"""Tests for repro.obs: registry, spans, events, scope, timelines.

Pins the tentpole guarantees: the disabled no-op fast path stays cheap
(bounded-ratio overhead test), Chrome trace exports carry the fields
``chrome://tracing`` requires, telemetry is deterministic in sim-time
content for a seed, enabling it never changes simulation outcomes, and
a full run produces spans for all five pipeline stages plus attack
events attributable in the run timeline.
"""

import json

import pytest

from repro import obs
from repro.ids.report import DetectionReport, WindowResult
from repro.obs import (
    EventLog,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NULL_SPAN,
    ObsEvent,
    RunTimeline,
    SpanTracer,
    chrome_trace,
    events_from_dicts,
    timeline_from_result,
)
from repro.obs.bench import run_overhead_benchmark
from repro.testbed import Scenario, run_full_experiment

SCENARIO = Scenario(n_devices=2, seed=5)
TRAIN, DETECT = 25.0, 12.0


# ----------------------------------------------------------------------
# Metrics registry


class TestRegistry:
    def test_counter_handle_is_shared(self):
        registry = MetricsRegistry()
        a = registry.counter("sim.events")
        b = registry.counter("sim.events")
        assert a is b
        a.inc()
        b.inc(2.0)
        assert registry.value("sim.events") == 3.0

    def test_labels_key_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("queue.drops", queue="a").inc()
        registry.counter("queue.drops", queue="b").inc(4)
        assert registry.value("queue.drops", queue="a") == 1.0
        assert registry.value("queue.drops", queue="b") == 4.0
        assert registry.value("queue.drops") == 0.0  # unlabeled never written

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("sim.heap_depth")
        gauge.set(10)
        gauge.set(3)
        assert registry.value("sim.heap_depth") == 3.0

    def test_histogram_buckets_and_mean(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(55.5 / 3)
        assert hist.bucket_dict() == {"1.0": 1, "10.0": 1, "+Inf": 1}

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("x")

    def test_disabled_returns_null_instrument(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_INSTRUMENT
        assert registry.gauge("b") is NULL_INSTRUMENT
        assert registry.histogram("c") is NULL_INSTRUMENT
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.set(5)
        NULL_INSTRUMENT.observe(1.0)
        assert len(registry) == 0

    def test_snapshot_excludes_wall_metrics_on_request(self):
        registry = MetricsRegistry()
        registry.counter("sim.events").inc()
        registry.counter("ids.cpu_seconds", wall=True).inc(0.5)
        full = registry.snapshot()
        assert set(full) == {"sim.events", "ids.cpu_seconds"}
        deterministic = registry.snapshot(include_wall=False)
        assert set(deterministic) == {"sim.events"}

    def test_format_text_renders_labels(self):
        registry = MetricsRegistry()
        registry.counter("queue.drops", queue="txq:a").inc(7)
        assert "queue.drops{queue=txq:a}: 7" in registry.format_text()


class TestOverhead:
    def test_disabled_fast_path_bounded(self):
        # The no-op fast path: instrumented-but-disabled code must stay
        # within 2x of the bare loop (it adds one no-op method call per
        # iteration).  Best-of-repeats keeps scheduler noise out.
        result = run_overhead_benchmark(iterations=50_000, repeats=3)
        assert result["disabled_ratio"] < 2.0
        # Enabled costs real work; just pin that it's bounded, not free.
        assert result["enabled_ratio"] < 60.0


# ----------------------------------------------------------------------
# Events


class TestEventLog:
    def test_disabled_log_records_nothing(self):
        log = EventLog(enabled=False)
        log.record(1.0, "queue.drop")
        assert len(log) == 0

    def test_by_kind_matches_prefix_segments(self):
        log = EventLog()
        log.record(1.0, "attack.start", detail="syn")
        log.record(2.0, "attacker.seen")  # prefix string, different segment
        log.record(3.0, "attack.stop", detail="syn")
        assert [e.kind for e in log.by_kind("attack")] == ["attack.start", "attack.stop"]

    def test_to_dicts_sorted_and_roundtrips(self):
        log = EventLog()
        log.record(2.0, "b")
        log.record(1.0, "z", detail="late")
        log.record(1.0, "a", value=4.0)
        payload = log.to_dicts()
        assert [(e["time"], e["kind"]) for e in payload] == [
            (1.0, "a"), (1.0, "z"), (2.0, "b"),
        ]
        rebuilt = events_from_dicts(payload)
        assert rebuilt[0] == ObsEvent(1.0, "a", value=4.0)


# ----------------------------------------------------------------------
# Spans + Chrome trace


def make_tracer(times):
    """A tracer whose sim clock pops from ``times`` per read."""
    queue = list(times)
    return SpanTracer(clock=lambda: queue.pop(0))


class TestSpans:
    def test_span_records_sim_times(self):
        tracer = make_tracer([5.0, 7.5])
        with tracer.span("tcp.handshake", node="dev-0"):
            pass
        (span,) = tracer.spans
        assert (span.begin, span.end) == (5.0, 7.5)
        assert span.sim_duration == 2.5
        assert dict(span.attrs) == {"node": "dev-0"}
        assert span.wall_seconds >= 0.0

    def test_exception_marks_error_attr(self):
        tracer = make_tracer([0.0, 1.0])
        with pytest.raises(RuntimeError):
            with tracer.span("stage.build"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert dict(span.attrs)["error"] == "RuntimeError"

    def test_deferred_finish(self):
        tracer = make_tracer([1.0, 4.0])
        handle = tracer.span("tcp.handshake").start()
        handle.set("result", "established")
        handle.finish()
        handle.finish()  # idempotent
        (span,) = tracer.spans
        assert (span.begin, span.end) == (1.0, 4.0)
        assert dict(span.attrs)["result"] == "established"

    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = SpanTracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        with tracer.span("anything") as span:
            span.set("k", "v")
        assert tracer.spans == []

    def test_wall_isolated_from_deterministic_export(self):
        tracer = make_tracer([0.0, 1.0])
        with tracer.span("stage.build"):
            pass
        (payload,) = tracer.to_dicts(include_wall=False)
        assert "wall_ms" not in payload
        (full,) = tracer.to_dicts()
        assert "wall_ms" in full

    def test_chrome_trace_schema(self):
        tracer = make_tracer([1.5, 2.0])
        with tracer.span("stage.train-models", cache_hit=False):
            pass
        (event,) = chrome_trace(tracer.spans)
        assert set(event) == {"ph", "ts", "dur", "pid", "tid", "name", "cat", "args"}
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(1.5e6)  # microseconds of sim time
        assert event["dur"] == pytest.approx(0.5e6)
        assert (event["pid"], event["tid"]) == (1, 1)
        assert event["cat"] == "stage"
        assert event["args"]["cache_hit"] is False
        assert "wall_ms" in event["args"]
        json.dumps([event])  # JSON-serializable as chrome://tracing requires

    def test_chrome_trace_accepts_snapshot_dicts_and_drops_wall(self):
        tracer = make_tracer([0.0, 1.0])
        with tracer.span("stage.detect"):
            pass
        (event,) = chrome_trace(tracer.to_dicts(), include_wall=False)
        assert "wall_ms" not in event["args"]


# ----------------------------------------------------------------------
# Scoping


class TestScope:
    def test_default_context_is_disabled(self):
        ctx = obs.current()
        assert not ctx.enabled
        assert ctx.registry.counter("x") is NULL_INSTRUMENT
        assert ctx.tracer.span("y") is NULL_SPAN

    def test_scope_swaps_and_restores(self):
        before = obs.current()
        with obs.scope() as octx:
            assert obs.current() is octx
            assert octx.enabled
            with obs.scope() as inner:
                assert obs.current() is inner
                assert inner is not octx
            assert obs.current() is octx
        assert obs.current() is before

    def test_scope_restores_on_exception(self):
        before = obs.current()
        with pytest.raises(RuntimeError):
            with obs.scope():
                raise RuntimeError("boom")
        assert obs.current() is before

    def test_snapshot_shape(self):
        with obs.scope() as octx:
            octx.registry.counter("a").inc()
            octx.events.record(1.0, "attack.start")
            with octx.tracer.span("stage.build"):
                pass
        snapshot = octx.snapshot(include_wall=False)
        assert set(snapshot) == {"metrics", "spans", "events", "flight"}
        json.dumps(snapshot)


# ----------------------------------------------------------------------
# Per-second accuracy (the attack-boundary drop)


def boundary_report():
    """Steady windows at full accuracy; the attack-edge bucket dips."""
    report = DetectionReport("RF")
    rows = [
        (0, 10.0, 50, 0, 1.0),     # benign steady state
        (1, 11.0, 50, 0, 1.0),
        (2, 12.0, 80, 40, 0.55),   # attack's first second: boundary dip
        (3, 13.0, 200, 200, 0.98), # flood steady state
        (4, 14.0, 200, 200, 0.99),
    ]
    for index, start, n, mal, acc in rows:
        report.windows.append(WindowResult(index, start, n, mal, mal, acc))
    return report


class TestPerSecondAccuracy:
    def test_boundary_bucket_dips(self):
        series = boundary_report().per_second_accuracy()
        by_second = {entry["second"]: entry["accuracy"] for entry in series}
        assert by_second[12.0] == pytest.approx(0.55)
        assert min(by_second, key=by_second.get) == 12.0
        assert all(by_second[s] > 0.9 for s in by_second if s != 12.0)

    def test_packet_weighting_within_bucket(self):
        report = DetectionReport("RF")
        report.windows.append(WindowResult(0, 0.2, 90, 0, 0, 1.0))
        report.windows.append(WindowResult(1, 0.7, 10, 10, 0, 0.0))
        (entry,) = report.per_second_accuracy()
        assert entry["accuracy"] == pytest.approx(0.9)
        assert entry["n_packets"] == 100
        assert entry["n_windows"] == 2

    def test_unscored_windows_omitted(self):
        report = DetectionReport("RF")
        report.windows.append(WindowResult(0, 3.0, 0, 0, 0, 0.0, status="degraded"))
        assert report.per_second_accuracy() == []

    def test_wider_buckets(self):
        series = boundary_report().per_second_accuracy(bucket_seconds=5.0)
        assert [entry["second"] for entry in series] == [10.0]

    def test_invalid_bucket_raises(self):
        with pytest.raises(ValueError):
            boundary_report().per_second_accuracy(0.0)


# ----------------------------------------------------------------------
# Timeline


class TestRunTimeline:
    def test_sum_and_set_modes(self):
        timeline = RunTimeline()
        timeline.add_value(1.2, "packets", 10)
        timeline.add_value(1.8, "packets", 5)
        timeline.add_value(1.2, "depth", 3, mode="set")
        timeline.add_value(1.8, "depth", 7, mode="set")
        (row,) = timeline.rows()
        assert row["packets"] == 15
        assert row["depth"] == 7

    def test_rows_dense_between_first_and_last(self):
        timeline = RunTimeline()
        timeline.add_value(2.0, "packets", 1)
        timeline.add_value(5.0, "packets", 1)
        rows = timeline.rows()
        assert [row["second"] for row in rows] == [2.0, 3.0, 4.0, 5.0]
        assert rows[1]["packets"] == 0.0

    def test_events_become_columns_and_marks(self):
        timeline = RunTimeline()
        timeline.add_events(
            [
                ObsEvent(3.1, "attack.start", detail="syn"),
                {"time": 3.4, "kind": "queue.drop", "detail": "txq:a", "value": 1.0},
                ObsEvent(3.6, "queue.drop", detail="txq:a"),
            ]
        )
        (row,) = timeline.rows()
        assert row["ev.attack.start"] == 1.0
        assert row["ev.queue.drop"] == 2.0
        assert row["events"] == "attack.start[syn]"  # queue drops are not markers

    def test_csv_and_json_exports(self):
        timeline = RunTimeline()
        timeline.add_value(0.0, "packets", 3)
        timeline.add_mark(0.0, "attack.start[syn]")
        csv = timeline.to_csv()
        assert csv.splitlines()[0] == "second,packets,events"
        assert csv.splitlines()[1] == "0,3,attack.start[syn]"
        payload = json.loads(timeline.to_json())
        assert payload["bucket_seconds"] == 1.0
        assert payload["rows"][0]["packets"] == 3.0

    def test_render_ascii_chart(self):
        report = boundary_report()
        timeline = RunTimeline()
        timeline.add_windows(report)
        timeline.add_events([ObsEvent(12.0, "attack.start", detail="syn")])
        timeline.add_value(13.0, "ev.queue.drop", 4)
        chart = timeline.render_ascii(width=20)
        lines = chart.splitlines()
        assert "packets (peak 200)" in lines[0]
        assert "acc.RF" in lines[0]
        dip_line = next(line for line in lines if "attack.start[syn]" in line)
        assert " 55.0%" in dip_line
        assert any("[queue drops: 4]" in line for line in lines)
        # Full bar on the peak row, shorter on the dip row.
        peak_line = next(line for line in lines if "#" * 20 in line)
        assert "  200" in peak_line

    def test_render_blank_accuracy_for_unscored_buckets(self):
        timeline = RunTimeline()
        timeline.add_value(0.0, "packets", 5)
        timeline.add_value(1.0, "acc.RF", 0.9, mode="set")
        lines = timeline.render_ascii().splitlines()
        assert lines[2].rstrip().endswith("-")  # bucket 0: traffic, no verdicts
        assert "90.0%" in lines[3]

    def test_empty_timeline(self):
        assert RunTimeline().render_ascii() == "(empty timeline)"
        assert RunTimeline().rows() == []


# ----------------------------------------------------------------------
# Integration: a full observed run


@pytest.fixture(scope="module")
def observed_run():
    with obs.scope() as octx:
        result = run_full_experiment(
            SCENARIO, train_duration=TRAIN, detect_duration=DETECT
        )
    return result, octx


STAGES = ("build", "capture-train", "train-models", "capture-detect", "detect")


class TestObservedExperiment:
    def test_result_carries_snapshot(self, observed_run):
        result, _ = observed_run
        assert result.telemetry is not None
        assert set(result.telemetry) == {"metrics", "spans", "events", "flight"}

    def test_all_five_stages_have_spans(self, observed_run):
        result, _ = observed_run
        names = {span["name"] for span in result.telemetry["spans"]}
        for stage in STAGES:
            assert f"stage.{stage}" in names

    def test_chrome_trace_covers_stages(self, observed_run):
        _, octx = observed_run
        events = chrome_trace(octx.tracer.spans)
        names = {event["name"] for event in events}
        assert {f"stage.{stage}" for stage in STAGES} <= names
        for event in events:
            assert set(event) == {"ph", "ts", "dur", "pid", "tid", "name", "cat", "args"}
            assert event["dur"] >= 0

    def test_attack_events_recorded(self, observed_run):
        result, _ = observed_run
        kinds = {e["kind"] for e in result.telemetry["events"]}
        assert "attack.start" in kinds
        assert "attack.stop" in kinds
        assert "ids.window" in kinds

    def test_core_metrics_populated(self, observed_run):
        result, _ = observed_run
        metrics = result.telemetry["metrics"]
        assert metrics["sim.events_dispatched"]["value"] > 0
        assert metrics["pipeline.cache_misses"]["value"] == 5.0
        assert any(key.startswith("queue.enqueued{") for key in metrics)

    def test_timeline_attributes_attack_to_traffic(self, observed_run):
        result, _ = observed_run
        timeline = timeline_from_result(result)
        rows = timeline.rows()
        marked = [row for row in rows if "attack.start" in row["events"]]
        assert marked
        # Rows at/after an attack launch carry the elevated flood traffic:
        # the detection phases peak well above the benign baseline.
        detect_rows = [row for row in rows if row["packets"] > 0]
        baseline = min(row["packets"] for row in detect_rows)
        peak = max(row["packets"] for row in detect_rows)
        assert peak > 2 * baseline
        chart = timeline.render_ascii()
        assert "attack.start" in chart

    def test_telemetry_deterministic_for_seed(self):
        def run():
            with obs.scope() as octx:
                run_full_experiment(
                    SCENARIO, train_duration=TRAIN, detect_duration=DETECT
                )
            return json.dumps(octx.snapshot(include_wall=False), sort_keys=True)

        assert run() == run()

    def test_telemetry_does_not_perturb_simulation(self, observed_run):
        observed, _ = observed_run
        plain = run_full_experiment(
            SCENARIO, train_duration=TRAIN, detect_duration=DETECT
        )
        assert plain.telemetry is None
        assert plain.table1() == observed.table1()
        assert plain.train_summary == observed.train_summary
        assert plain.detect_summary == observed.detect_summary
