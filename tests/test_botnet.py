"""Tests for the Mirai emulation: telnet, scanner, loader, CNC, bot, floods."""

import pytest

from repro.botnet import (
    AckFlood,
    CncServer,
    Loader,
    MIRAI_CREDENTIALS,
    MiraiBot,
    MiraiScanner,
    SynFlood,
    UdpFlood,
    VulnerableTelnet,
    make_attack,
)
from repro.botnet.cnc import AttackOrder
from repro.botnet.credentials import credential_index, random_credential
from repro.containers import Image, Orchestrator
from repro.sim import CsmaLan, PacketProbe, Simulator


@pytest.fixture()
def env():
    sim = Simulator()
    lan = CsmaLan(sim)
    orch = Orchestrator(sim, lan)
    return sim, lan, orch


def make_device(orch, name, user="root", password="xc3511", on_infected=None):
    dev = orch.run(name, Image("dev"))
    telnet = dev.exec(VulnerableTelnet(user, password, on_infected=on_infected))
    return dev, telnet


class TestCredentials:
    def test_dictionary_is_nonempty_and_unique(self):
        assert len(MIRAI_CREDENTIALS) >= 50
        assert len(set(MIRAI_CREDENTIALS)) == len(MIRAI_CREDENTIALS)

    def test_classic_entries_present(self):
        assert ("root", "xc3511") in MIRAI_CREDENTIALS
        assert ("admin", "admin") in MIRAI_CREDENTIALS

    def test_random_credential_deterministic(self):
        assert random_credential(3) == random_credential(3)
        assert random_credential(3) in MIRAI_CREDENTIALS

    def test_credential_index(self):
        assert credential_index(("root", "xc3511")) == 0
        assert credential_index(("nope", "nope")) == -1


class TestTelnet:
    def drive(self, env, lines, user="root", password="xc3511"):
        """Connect and send ``lines`` one per server response; return replies."""
        sim, lan, orch = env
        dev, telnet = make_device(orch, "dev", user, password)
        client = orch.run("client", Image("c"))
        replies = []
        queue = list(lines)
        sock = client.node.tcp.socket()

        def on_data(s, payload, length, app_data):
            replies.append(payload.decode("ascii", errors="replace"))
            if queue:
                s.send(queue.pop(0).encode("ascii") + b"\r\n")

        sock.on_data = on_data
        sock.connect(dev.node.address, 23)
        sim.run(until=30.0)
        return telnet, replies

    def test_successful_login(self, env):
        telnet, replies = self.drive(env, ["root", "xc3511"])
        assert telnet.successful_logins == 1
        assert any("shell" in r for r in replies)

    def test_wrong_password_reprompts(self, env):
        telnet, replies = self.drive(env, ["root", "wrong", "root", "xc3511"])
        assert telnet.successful_logins == 1
        assert any("Login incorrect" in r for r in replies)

    def test_three_failures_disconnects(self, env):
        telnet, replies = self.drive(
            env, ["a", "b", "c", "d", "e", "f", "never", "sent"]
        )
        assert telnet.successful_logins == 0
        assert telnet.login_attempts == 3

    def test_shell_commands(self, env):
        telnet, replies = self.drive(env, ["root", "xc3511", "ps", "exit"])
        assert any("telnet" in r for r in replies)
        assert any("logout" in r for r in replies)

    def test_unknown_command(self, env):
        telnet, replies = self.drive(env, ["root", "xc3511", "rm -rf /"])
        assert any("not found" in r for r in replies)


class TestScanner:
    def test_cracks_device_with_dictionary_credential(self, env):
        sim, lan, orch = env
        dev, _ = make_device(orch, "dev", "admin", "admin")
        attacker = orch.run("attacker", Image("atk"))
        found = []
        scanner = attacker.exec(
            MiraiScanner(lambda t, u, p: found.append((t, u, p)), seed=1)
        )
        scanner.scan([dev.node.address])
        sim.run(until=120.0)
        assert found == [(dev.node.address, "admin", "admin")]
        assert scanner.hosts_cracked == 1

    def test_gives_up_on_strong_credentials(self, env):
        sim, lan, orch = env
        dev, _ = make_device(orch, "dev", "root", "Tr0ub4dor&3")
        attacker = orch.run("attacker", Image("atk"))
        found = []
        scanner = attacker.exec(
            MiraiScanner(lambda t, u, p: found.append(t), seed=1)
        )
        scanner.scan([dev.node.address])
        sim.run(until=600.0)
        assert found == []
        assert scanner.hosts_scanned == 1
        assert scanner.connections_opened >= len(MIRAI_CREDENTIALS) // 3

    def test_dead_host_times_out(self, env):
        sim, lan, orch = env
        attacker = orch.run("attacker", Image("atk"))
        done = []
        scanner = attacker.exec(
            MiraiScanner(lambda t, u, p: None, seed=1, on_complete=lambda: done.append(1))
        )
        lan.network.allocate()  # address with no host behind it
        from repro.sim.address import Ipv4Address

        scanner.scan([Ipv4Address.parse("10.0.0.200")])
        sim.run(until=60.0)
        assert done
        assert scanner.hosts_cracked == 0

    def test_excluded_addresses_skipped(self, env):
        sim, lan, orch = env
        dev, _ = make_device(orch, "dev")
        attacker = orch.run("attacker", Image("atk"))
        scanner = attacker.exec(MiraiScanner(lambda t, u, p: None, seed=1))
        scanner.exclude(dev.node.address)
        scanner.scan([dev.node.address])
        sim.run(until=60.0)
        assert scanner.connections_opened == 0

    def test_scan_traffic_labeled_malicious(self, env):
        sim, lan, orch = env
        probe = lan.add_probe(PacketProbe())
        dev, _ = make_device(orch, "dev")
        attacker = orch.run("attacker", Image("atk"))
        scanner = attacker.exec(MiraiScanner(lambda t, u, p: None, seed=1))
        scanner.scan([dev.node.address])
        sim.run(until=60.0)
        scan_packets = [r for r in probe.records if r.attack == "scan"]
        assert scan_packets
        assert all(r.label == 1 for r in scan_packets)

    def test_multiple_devices_all_scanned(self, env):
        sim, lan, orch = env
        devices = [make_device(orch, f"dev{i}")[0] for i in range(4)]
        attacker = orch.run("attacker", Image("atk"))
        found = []
        scanner = attacker.exec(
            MiraiScanner(lambda t, u, p: found.append(t.value), seed=2, concurrency=2)
        )
        scanner.scan([d.node.address for d in devices])
        sim.run(until=300.0)
        assert sorted(found) == sorted(d.node.address.value for d in devices)


class TestLoaderAndBot:
    def build_botnet(self, env, n_devices=2, cnc_port=2323):
        """Full lifecycle: scan -> load -> infect -> register."""
        sim, lan, orch = env
        attacker = orch.run("attacker", Image("atk"))
        cnc = attacker.exec(CncServer(port=cnc_port))
        loader = attacker.exec(Loader())
        devices = []
        for i in range(n_devices):
            holder = {}

            def on_infected(telnet, holder=holder):
                bot = MiraiBot(attacker.node.address, cnc_port=cnc_port, seed=i)
                telnet.container.exec(bot)
                holder["bot"] = bot

            dev, telnet = make_device(orch, f"dev{i}", on_infected=on_infected)
            devices.append((dev, telnet, holder))
        scanner = attacker.exec(
            MiraiScanner(lambda t, u, p: loader.infect(t, u, p), seed=3)
        )
        scanner.scan([d.node.address for d, _, _ in devices])
        sim.run(until=300.0)
        return sim, lan, orch, attacker, cnc, loader, devices

    def test_loader_completes_infection(self, env):
        sim, _, _, _, cnc, loader, devices = self.build_botnet(env)
        assert loader.infections_completed == len(devices)
        assert all(t.infected for _, t, _ in devices)

    def test_bots_register_with_cnc(self, env):
        sim, _, _, _, cnc, loader, devices = self.build_botnet(env)
        assert cnc.bot_count == len(devices)
        assert all(h["bot"].registered for _, _, h in devices)

    def test_loader_idempotent(self, env):
        sim, _, _, _, cnc, loader, devices = self.build_botnet(env, n_devices=1)
        dev = devices[0][0]
        loader.infect(dev.node.address, "root", "xc3511")
        sim.run(until=400.0)
        assert loader.infections_started == 1

    def test_attack_order_roundtrip(self):
        from repro.sim.address import Ipv4Address

        order = AttackOrder("syn", Ipv4Address.parse("10.0.0.9"), 80, 5.0, 250.0)
        assert AttackOrder.decode(order.encode().decode().strip()) == order

    def test_malformed_order_rejected(self):
        with pytest.raises(ValueError):
            AttackOrder.decode("ATTACK syn")

    def test_cnc_launch_reaches_bots_and_floods(self, env):
        sim, lan, orch, attacker, cnc, loader, devices = self.build_botnet(env)
        probe = lan.add_probe(PacketProbe())
        tserver = orch.run("tserver", Image("ts"))
        tserver.node.tcp.listen(80, lambda s: None)
        cnc.launch_attack("syn", tserver.node.address, 80, duration=3.0, pps=100)
        sim.run(until=sim.now + 10.0)
        syn_packets = [r for r in probe.records if r.attack == "syn_flood"]
        # two bots at 100 pps for 3 s
        assert len(syn_packets) == pytest.approx(600, rel=0.05)
        assert all(r.label == 1 for r in syn_packets)

    def test_keepalive_pings(self, env):
        sim, _, _, _, cnc, loader, devices = self.build_botnet(env, n_devices=1)
        sim.run(until=sim.now + 120.0)
        assert cnc.pings_received >= 3

    def test_bot_reconnects_after_cnc_restart(self, env):
        sim, _, _, attacker, cnc, loader, devices = self.build_botnet(env, n_devices=1)
        bot = devices[0][2]["bot"]
        # kill the C2 connection server-side
        for sock in list(cnc.bots.values()):
            sock.abort()
        sim.run(until=sim.now + 60.0)
        assert bot.registered
        assert cnc.bot_count == 1


class TestAttackModules:
    def setup_flood(self, env, cls, **kwargs):
        sim, lan, orch = env
        bot = orch.run("bot", Image("bot"))
        victim = orch.run("victim", Image("v"))
        victim.node.tcp.listen(80, lambda s: None, backlog=32)
        probe = lan.add_probe(PacketProbe())
        attack = cls(
            bot.node, sim, victim.node.address, 80, pps=200, duration=2.0, seed=1, **kwargs
        )
        return sim, probe, victim, attack

    def test_syn_flood_rate_and_spoofing(self, env):
        sim, probe, victim, attack = self.setup_flood(env, SynFlood)
        attack.start()
        sim.run(until=5.0)
        syns = [r for r in probe.records if r.attack == "syn_flood"]
        assert len(syns) == pytest.approx(400, rel=0.05)
        sources = {r.src_ip for r in syns}
        assert len(sources) > 100  # spoofed
        assert len({r.src_port for r in syns}) > 100

    def test_syn_flood_fills_backlog(self, env):
        sim, probe, victim, attack = self.setup_flood(env, SynFlood)
        listener = victim.node.tcp.listeners[80]
        attack.start()
        sim.run(until=1.0)
        assert len(listener.half_open) == 32
        assert listener.syn_dropped > 0

    def test_ack_flood_draws_rsts(self, env):
        sim, probe, victim, attack = self.setup_flood(env, AckFlood)
        attack.start()
        sim.run(until=5.0)
        acks = [r for r in probe.records if r.attack == "ack_flood"]
        assert len(acks) == pytest.approx(400, rel=0.05)
        assert victim.node.tcp.rst_sent == len(acks)

    def test_udp_flood_randomizes_ports(self, env):
        sim, probe, victim, attack = self.setup_flood(env, UdpFlood)
        attack.start()
        sim.run(until=5.0)
        udps = [r for r in probe.records if r.attack == "udp_flood"]
        assert len(udps) == pytest.approx(400, rel=0.05)
        assert len({r.dst_port for r in udps}) > 100
        assert victim.node.udp.unreachable > 0

    def test_stop_halts_flood(self, env):
        sim, probe, victim, attack = self.setup_flood(env, UdpFlood)
        attack.start()
        sim.run(until=0.5)
        attack.stop()
        count = attack.packets_sent
        sim.run(until=5.0)
        assert attack.packets_sent == count

    def test_make_attack_factory(self, env):
        sim, lan, orch = env
        bot = orch.run("bot", Image("b"))
        from repro.sim.address import Ipv4Address

        target = Ipv4Address.parse("10.0.0.99")
        for kind, cls in (("syn", SynFlood), ("ack", AckFlood), ("udp", UdpFlood)):
            assert isinstance(
                make_attack(kind, bot.node, sim, target, 80, 10, 1), cls
            )
        with pytest.raises(ValueError):
            make_attack("slowloris", bot.node, sim, target, 80, 10, 1)

    def test_fractional_pps_accumulates(self, env):
        sim, lan, orch = env
        bot = orch.run("bot", Image("b"))
        victim = orch.run("victim", Image("v"))
        attack = UdpFlood(bot.node, sim, victim.node.address, 80, pps=7, duration=10.0, seed=2)
        attack.start()
        sim.run(until=20.0)
        assert attack.packets_sent == pytest.approx(70, abs=2)


class TestPropagation:
    def test_worm_spreads_through_fleet(self, env):
        """One seed infection propagates to the whole device fleet."""
        sim, lan, orch = env
        attacker = orch.run("attacker", Image("atk"))
        cnc = attacker.exec(CncServer(port=2323))
        loader = attacker.exec(Loader())
        fleet = []
        all_addresses = []

        def report(target, user, password):
            loader.infect(target, user, password)

        def make_on_infected(index):
            def on_infected(telnet):
                bot = MiraiBot(
                    attacker.node.address,
                    cnc_port=2323,
                    seed=index,
                    self_propagate=True,
                    propagation_targets=list(all_addresses),
                    report_credentials=report,
                )
                telnet.container.exec(bot)

            return on_infected

        for i in range(4):
            dev, telnet = make_device(orch, f"dev{i}", on_infected=make_on_infected(i))
            fleet.append((dev, telnet))
            all_addresses.append(dev.node.address)

        # Seed: attacker scans only the first device; bots do the rest.
        scanner = attacker.exec(MiraiScanner(report, seed=9))
        scanner.scan([all_addresses[0]])
        sim.run(until=900.0)
        assert all(t.infected for _, t in fleet)
        assert cnc.bot_count == 4
