"""Tests for KMeans, U-k-means, and the cluster-labelling detector."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import KMeans, KMeansDetector, UnsupervisedKMeans, accuracy_score
from repro.ml.kmeans import _kmeans_pp_init, _pairwise_sq_dists
from repro.ml.preprocessing import NotFittedError


def blobs(k=3, n_per=60, d=2, sep=8.0, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-sep, sep, (k, d))
    X = np.vstack([rng.normal(c, 0.5, (n_per, d)) for c in centers])
    labels = np.repeat(np.arange(k), n_per)
    return X, labels, centers


class TestDistances:
    def test_pairwise_matches_naive(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (10, 3))
        C = rng.normal(0, 1, (4, 3))
        fast = _pairwise_sq_dists(X, C)
        naive = ((X[:, None, :] - C[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(fast, naive, atol=1e-9)

    def test_nonnegative(self):
        X = np.array([[1e8, 1e8]])
        np.testing.assert_array_equal(_pairwise_sq_dists(X, X) >= 0, True)


class TestKMeansPlusPlus:
    def test_returns_k_centers_from_data_region(self):
        X, _, _ = blobs()
        centers = _kmeans_pp_init(X, 3, np.random.default_rng(1))
        assert centers.shape == (3, 2)


class TestKMeans:
    def test_recovers_separated_blobs(self):
        X, true_labels, _ = blobs(k=3, seed=1)
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        # each true blob maps to exactly one cluster
        for blob in range(3):
            members = km.labels_[true_labels == blob]
            assert len(np.unique(members)) == 1

    def test_inertia_decreases_with_more_clusters(self):
        X, _, _ = blobs(k=4, seed=2)
        inertia = [
            KMeans(n_clusters=k, random_state=0).fit(X).inertia_ for k in (1, 2, 4)
        ]
        assert inertia[0] > inertia[1] > inertia[2]

    def test_predict_assigns_nearest_centroid(self):
        X, _, _ = blobs(k=2, seed=3)
        km = KMeans(n_clusters=2, random_state=0).fit(X)
        preds = km.predict(X)
        dists = _pairwise_sq_dists(X, km.cluster_centers_)
        np.testing.assert_array_equal(preds, np.argmin(dists, axis=1))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KMeans().predict(np.zeros((2, 2)))

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_property_labels_in_range_and_deterministic(self, seed):
        X, _, _ = blobs(k=2, n_per=30, seed=seed)
        a = KMeans(n_clusters=2, random_state=42).fit(X)
        b = KMeans(n_clusters=2, random_state=42).fit(X)
        np.testing.assert_array_equal(a.labels_, b.labels_)
        assert set(np.unique(a.labels_)) <= {0, 1}


class TestUnsupervisedKMeans:
    def test_discovers_cluster_count(self):
        X, _, _ = blobs(k=3, n_per=80, sep=10.0, seed=4)
        uk = UnsupervisedKMeans(max_clusters=12, gamma_scale=2.0, random_state=0).fit(X)
        assert 2 <= uk.n_clusters_ <= 6  # near the true 3, never the cap

    def test_mixing_proportions_sum_to_one(self):
        X, _, _ = blobs(k=2, seed=5)
        uk = UnsupervisedKMeans(max_clusters=10, random_state=0).fit(X)
        assert uk.mixing_proportions_.sum() == pytest.approx(1.0)
        assert (uk.mixing_proportions_ > 0).all()

    def test_labels_cover_all_points(self):
        X, _, _ = blobs(k=3, seed=6)
        uk = UnsupervisedKMeans(random_state=0).fit(X)
        assert len(uk.labels_) == len(X)
        assert uk.labels_.max() < uk.n_clusters_

    def test_single_blob_collapses_to_few_clusters(self):
        rng = np.random.default_rng(7)
        X = rng.normal(0, 0.2, (150, 3))
        uk = UnsupervisedKMeans(max_clusters=15, gamma_scale=2.0, random_state=0).fit(X)
        assert uk.n_clusters_ <= 4

    def test_gamma_scale_controls_pruning(self):
        """A stronger entropy penalty prunes more aggressively."""
        rng = np.random.default_rng(8)
        X = rng.normal(0, 1.0, (200, 3))
        gentle = UnsupervisedKMeans(max_clusters=15, gamma_scale=0.1, random_state=0).fit(X)
        harsh = UnsupervisedKMeans(max_clusters=15, gamma_scale=3.0, random_state=0).fit(X)
        assert harsh.n_clusters_ <= gentle.n_clusters_

    def test_invalid_gamma_scale(self):
        with pytest.raises(ValueError):
            UnsupervisedKMeans(gamma_scale=-1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            UnsupervisedKMeans().predict(np.zeros((2, 2)))

    def test_invalid_max_clusters(self):
        with pytest.raises(ValueError):
            UnsupervisedKMeans(max_clusters=1)


class TestKMeansDetector:
    def test_classifies_separated_classes(self):
        X, true_labels, _ = blobs(k=2, sep=10.0, seed=8)
        y = (true_labels == 1).astype(int)
        detector = KMeansDetector(auto_k=True, random_state=0).fit(X, y)
        assert accuracy_score(y, detector.predict(X)) > 0.95

    def test_fixed_k_mode(self):
        X, true_labels, _ = blobs(k=2, sep=10.0, seed=9)
        y = (true_labels == 1).astype(int)
        detector = KMeansDetector(n_clusters=4, auto_k=False, random_state=0).fit(X, y)
        assert detector.n_clusters_ == 4
        assert accuracy_score(y, detector.predict(X)) > 0.95

    def test_cluster_labels_are_binary(self):
        X, true_labels, _ = blobs(k=3, seed=10)
        y = (true_labels > 0).astype(int)
        detector = KMeansDetector(random_state=0).fit(X, y)
        assert set(np.unique(detector.cluster_labels_)) <= {0, 1}

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KMeansDetector().predict(np.zeros((2, 2)))

    def test_handles_multimodal_classes(self):
        """Each class made of several blobs - needs multiple clusters."""
        X1, _, _ = blobs(k=2, sep=12.0, seed=11)
        X2, _, _ = blobs(k=2, sep=12.0, seed=12)
        X = np.vstack([X1, X2 + 100.0])
        y = np.array([0] * len(X1) + [1] * len(X2))
        detector = KMeansDetector(auto_k=True, max_clusters=16, random_state=0).fit(X, y)
        assert accuracy_score(y, detector.predict(X)) > 0.95
