"""Round-trip tests for model persistence (PKL files + pipeline bundles).

The paper saves each trained model to a PKL file; the staged pipeline
additionally bundles the scaler and feature-extractor configuration.
All three paper models (RF, K-Means, CNN) must predict identically
after a save/load round-trip.
"""

import numpy as np
import pytest

from repro.features.pipeline import FeatureExtractor
from repro.ml import (
    CnnClassifier,
    KMeansDetector,
    ModelBundle,
    RandomForestClassifier,
    StandardScaler,
    load_model,
    load_model_bundle,
    save_model,
    save_model_bundle,
)


def make_dataset(seed=3, n=160, d=6):
    """Two well-separated classes so every model family converges."""
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 1.0, size=(n // 2, d))
    X1 = rng.normal(4.0, 1.0, size=(n // 2, d))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    order = rng.permutation(n)
    return X[order], y[order]


def fitted_models():
    X, y = make_dataset()
    rf = RandomForestClassifier(n_estimators=10, random_state=0)
    rf.fit(X, y)
    km = KMeansDetector(n_clusters=4, auto_k=False, random_state=0)
    km.fit(X, y)
    cnn = CnnClassifier(n_features=X.shape[1], epochs=2, random_state=0)
    cnn.fit(X, y)
    return X, [("RF", rf), ("K-Means", km), ("CNN", cnn)]


class TestSaveLoadModel:
    @pytest.fixture(scope="class")
    def models(self):
        return fitted_models()

    def test_all_paper_models_roundtrip(self, models, tmp_path):
        X, trained = models
        for name, model in trained:
            path = tmp_path / f"{name}.pkl"
            size = save_model(model, path)
            assert size > 0 and path.stat().st_size == size
            restored = load_model(path)
            np.testing.assert_array_equal(
                restored.predict(X), model.predict(X),
                err_msg=f"{name} predictions changed after round-trip",
            )


class TestModelBundle:
    def test_bundle_roundtrip_with_scaler(self, tmp_path):
        X, y = make_dataset(seed=9)
        scaler = StandardScaler().fit(X)
        model = RandomForestClassifier(n_estimators=8, random_state=1)
        model.fit(scaler.transform(X), y)
        extractor = FeatureExtractor(window_seconds=2.0, stat_set="normalized")
        bundle = ModelBundle(
            model=model,
            scaler=scaler,
            extractor_config=extractor.to_config(),
            metadata={"name": "RF", "fit_seconds": 0.5},
        )
        save_model_bundle(bundle, tmp_path / "rf")
        restored = load_model_bundle(tmp_path / "rf")
        np.testing.assert_array_equal(
            restored.model.predict(restored.scaler.transform(X)),
            model.predict(scaler.transform(X)),
        )
        np.testing.assert_allclose(restored.scaler.transform(X), scaler.transform(X))
        assert restored.metadata == {"name": "RF", "fit_seconds": 0.5}
        rebuilt = FeatureExtractor.from_config(restored.extractor_config)
        assert rebuilt.feature_names == extractor.feature_names
        assert rebuilt.window_seconds == 2.0

    def test_bundle_without_scaler(self, tmp_path):
        X, y = make_dataset(seed=11)
        model = RandomForestClassifier(n_estimators=5, random_state=2)
        model.fit(X, y)
        save_model_bundle(ModelBundle(model=model), tmp_path / "bare")
        restored = load_model_bundle(tmp_path / "bare")
        assert restored.scaler is None
        assert restored.extractor_config is None
        assert restored.metadata == {}
        np.testing.assert_array_equal(restored.model.predict(X), model.predict(X))
