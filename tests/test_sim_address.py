"""Tests for IPv4/MAC addressing and subnet allocation."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.address import (
    ANY_ADDRESS,
    AddressError,
    BROADCAST_MAC,
    Ipv4Address,
    Ipv4Network,
    MacAddress,
    MacAllocator,
)


class TestIpv4Address:
    def test_parse_and_format_roundtrip(self):
        assert str(Ipv4Address.parse("192.168.1.42")) == "192.168.1.42"

    def test_parse_computes_correct_integer(self):
        assert Ipv4Address.parse("10.0.0.1").value == (10 << 24) + 1

    def test_any_address_is_zero(self):
        assert ANY_ADDRESS.value == 0
        assert str(ANY_ADDRESS) == "0.0.0.0"

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1.2.3.-4"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            Ipv4Address.parse(bad)

    def test_out_of_range_value_rejected(self):
        with pytest.raises(AddressError):
            Ipv4Address(2**32)

    def test_hashable_and_comparable(self):
        a = Ipv4Address.parse("10.0.0.1")
        b = Ipv4Address.parse("10.0.0.1")
        assert a == b
        assert len({a, b}) == 1

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_roundtrip_any_value(self, value):
        addr = Ipv4Address(value)
        assert Ipv4Address.parse(str(addr)) == addr


class TestMacAddress:
    def test_parse_and_format_roundtrip(self):
        text = "02:00:00:00:00:2a"
        assert str(MacAddress.parse(text)) == text

    def test_broadcast_formats_all_ff(self):
        assert str(BROADCAST_MAC) == "ff:ff:ff:ff:ff:ff"

    @pytest.mark.parametrize("bad", ["", "02:00:00:00:00", "zz:00:00:00:00:01"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            MacAddress.parse(bad)

    def test_allocator_is_sequential_and_unique(self):
        alloc = MacAllocator()
        macs = [alloc.allocate() for _ in range(10)]
        assert len(set(macs)) == 10
        assert macs[0].value + 1 == macs[1].value

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_property_roundtrip_any_value(self, value):
        mac = MacAddress(value)
        assert MacAddress.parse(str(mac)) == mac


class TestIpv4Network:
    def test_network_address_masks_host_bits(self):
        net = Ipv4Network("10.0.0.55", 24)
        assert str(net.network) == "10.0.0.0"

    def test_broadcast(self):
        net = Ipv4Network("10.0.0.0", 24)
        assert str(net.broadcast) == "10.0.0.255"

    def test_contains(self):
        net = Ipv4Network("10.0.0.0", 24)
        assert net.contains(Ipv4Address.parse("10.0.0.200"))
        assert not net.contains(Ipv4Address.parse("10.0.1.1"))

    def test_allocation_sequential(self):
        net = Ipv4Network("10.0.0.0", 24)
        assert str(net.allocate()) == "10.0.0.1"
        assert str(net.allocate()) == "10.0.0.2"

    def test_allocation_exhaustion(self):
        net = Ipv4Network("10.0.0.0", 30)  # 2 usable hosts
        net.allocate()
        net.allocate()
        with pytest.raises(AddressError):
            net.allocate()

    def test_hosts_iterates_usable_addresses(self):
        net = Ipv4Network("10.0.0.0", 29)
        hosts = list(net.hosts())
        assert len(hosts) == 6
        assert str(hosts[0]) == "10.0.0.1"
        assert str(hosts[-1]) == "10.0.0.6"

    def test_invalid_prefix_rejected(self):
        with pytest.raises(AddressError):
            Ipv4Network("10.0.0.0", 33)

    @given(st.integers(min_value=8, max_value=30))
    def test_property_all_allocated_addresses_in_subnet(self, prefix):
        net = Ipv4Network("172.16.0.0", prefix)
        for _ in range(min(20, 2 ** (32 - prefix) - 2)):
            assert net.contains(net.allocate())

    def test_str(self):
        assert str(Ipv4Network("10.0.0.0", 24)) == "10.0.0.0/24"
