"""Staged experiment pipeline: store, runner DAG semantics, equivalence.

The equivalence test is the refactor's contract: the staged
``run_full_experiment`` must produce *identical* tables to the
historical monolithic flow (same seed, same testbed event order), and a
second run against a warm cache must execute zero stages while loading
identical results.
"""

import json
from pathlib import Path

import pytest

from repro.pipeline import (
    ArtifactStore,
    PipelineRunner,
    Stage,
    run_experiment_pipeline,
    stage_key,
)
from repro.testbed import (
    ExperimentResult,
    Scenario,
    Testbed,
    run_full_experiment,
    run_realtime_detection,
    train_models,
)

SCENARIO = Scenario(n_devices=2, seed=5)
TRAIN, DETECT = 25.0, 12.0


# ----------------------------------------------------------------------
# Store


class TestArtifactStore:
    def test_commit_and_open(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        key = "ab" + "0" * 62
        staging = store.begin(key)
        (staging / "data.json").write_text("{}")
        entry = store.commit(key, staging, meta={"stage": "x"})
        assert store.contains(key)
        assert store.open(key) == entry
        assert (entry / "data.json").read_text() == "{}"
        marker = json.loads((entry / "ARTIFACT.json").read_text())
        assert marker["stage"] == "x"

    def test_missing_key(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert not store.contains("ff" + "0" * 62)
        with pytest.raises(KeyError):
            store.open("ff" + "0" * 62)

    def test_race_loser_discarded(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "cd" + "1" * 62
        first = store.begin(key)
        (first / "v.txt").write_text("first")
        second = store.begin(key)
        (second / "v.txt").write_text("second")
        store.commit(key, first)
        store.commit(key, second)  # loses: the committed entry wins
        assert (store.open(key) / "v.txt").read_text() == "first"
        assert not second.exists()

    def test_stats_count_hits_and_misses(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "ee" + "2" * 62
        store.contains(key)
        staging = store.begin(key)
        store.commit(key, staging)
        store.contains(key)
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.hit_rate == 0.5


class TestStageKey:
    def test_deterministic(self):
        a = stage_key("s", {"seed": 1}, {"d": 2.0}, {"up": "k1"})
        assert a == stage_key("s", {"seed": 1}, {"d": 2.0}, {"up": "k1"})

    def test_sensitive_to_every_component(self):
        base = stage_key("s", {"seed": 1}, {"d": 2.0}, {"up": "k1"})
        assert stage_key("t", {"seed": 1}, {"d": 2.0}, {"up": "k1"}) != base
        assert stage_key("s", {"seed": 2}, {"d": 2.0}, {"up": "k1"}) != base
        assert stage_key("s", {"seed": 1}, {"d": 3.0}, {"up": "k1"}) != base
        assert stage_key("s", {"seed": 1}, {"d": 2.0}, {"up": "k2"}) != base


# ----------------------------------------------------------------------
# Runner DAG semantics (dummy stages, no testbed)


class RecordingStage(Stage):
    """A stage that logs executions and round-trips a JSON value."""

    def __init__(self, name, deps=(), requires_state=(), provides_state=(),
                 value=None, param=0, log=None):
        self.name = name
        self.deps = tuple(deps)
        self.requires_state = tuple(requires_state)
        self.provides_state = tuple(provides_state)
        self.value = value if value is not None else {"stage": name}
        self.param = param
        self.log = log if log is not None else []

    def params(self):
        return {"param": self.param}

    def run(self, ctx, inputs):
        self.log.append(self.name)
        for resource in self.provides_state:
            ctx.state[resource] = f"live-{self.name}"
        return self.value

    def save(self, value, directory: Path):
        (directory / "value.json").write_text(json.dumps(value))

    def load(self, directory: Path):
        return json.loads((directory / "value.json").read_text())


def make_chain(log):
    """build -> capture (live) -> pure, mirroring the experiment shape."""
    return [
        RecordingStage("build", provides_state=("res",), log=log),
        RecordingStage("capture", deps=("build",), requires_state=("res",),
                       provides_state=("res",), log=log),
        RecordingStage("pure", deps=("capture",), log=log),
    ]


class TestPipelineRunner:
    def test_rejects_unordered_deps(self):
        with pytest.raises(ValueError, match="depend"):
            PipelineRunner([RecordingStage("a", deps=("b",)), RecordingStage("b")])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            PipelineRunner([RecordingStage("a"), RecordingStage("a")])

    def test_uncached_run_executes_everything(self):
        log = []
        result = PipelineRunner(make_chain(log)).run(Scenario(n_devices=1))
        assert log == ["build", "capture", "pure"]
        assert result.value("pure") == {"stage": "pure"}

    def test_warm_cache_executes_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        scenario = Scenario(n_devices=1)
        log = []
        PipelineRunner(make_chain(log), store=store).run(scenario)
        log2 = []
        result = PipelineRunner(make_chain(log2), store=store).run(scenario)
        assert log2 == []
        assert result.executed == []
        assert set(result.cache_hits) == {"build", "capture", "pure"}
        # Artifacts still load on demand.
        assert result.value("capture") == {"stage": "capture"}

    def test_changed_param_cascades_downstream(self, tmp_path):
        store = ArtifactStore(tmp_path)
        scenario = Scenario(n_devices=1)
        PipelineRunner(make_chain([]), store=store).run(scenario)
        log = []
        stages = make_chain(log)
        stages[2].param = 99  # only the pure stage changes
        result = PipelineRunner(stages, store=store).run(scenario)
        # The pure stage misses; it needs no live state, so the testbed
        # chain stays cached and un-executed.
        assert log == ["pure"]
        assert result.outcomes["build"].cache_hit
        assert result.outcomes["capture"].cache_hit
        assert not result.outcomes["pure"].cache_hit

    def test_live_state_chain_reexecutes_for_missing_live_stage(self, tmp_path):
        store = ArtifactStore(tmp_path)
        scenario = Scenario(n_devices=1)
        PipelineRunner(make_chain([]), store=store).run(scenario)
        log = []
        stages = make_chain(log)
        stages[1].param = 7  # the live capture stage changes
        result = PipelineRunner(stages, store=store).run(scenario)
        # capture misses and needs live state, so build re-executes even
        # though its artifact is a cache hit (and is not rewritten).
        assert log == ["build", "capture", "pure"]
        assert result.outcomes["build"].cache_hit
        assert result.outcomes["build"].executed

    def test_scenario_change_invalidates_all(self, tmp_path):
        store = ArtifactStore(tmp_path)
        PipelineRunner(make_chain([]), store=store).run(Scenario(n_devices=1))
        log = []
        PipelineRunner(make_chain(log), store=store).run(Scenario(n_devices=2))
        assert log == ["build", "capture", "pure"]

    def test_finalizers_run_after_success(self):
        calls = []

        class Finalizing(RecordingStage):
            def run(self, ctx, inputs):
                ctx.add_finalizer(lambda: calls.append("finalized"))
                return super().run(ctx, inputs)

        PipelineRunner([Finalizing("only")]).run(Scenario(n_devices=1))
        assert calls == ["finalized"]


# ----------------------------------------------------------------------
# Same-seed equivalence with the pre-refactor monolith


def monolithic_full_experiment(scenario, train_duration, detect_duration):
    """The historical ``run_full_experiment`` body, kept as the reference."""
    testbed = Testbed(scenario).build()
    infection_seconds = testbed.infect_all()
    train_capture = testbed.capture(
        train_duration, scenario.training_schedule(train_duration)
    )
    trained = train_models(
        train_capture, window_seconds=scenario.window_seconds, seed=scenario.seed
    )
    detect_capture = testbed.capture(
        detect_duration, scenario.detection_schedule(detect_duration)
    )
    detection = run_realtime_detection(
        detect_capture, trained, window_seconds=scenario.window_seconds
    )
    testbed.sim.finalize()
    return ExperimentResult(
        scenario=scenario,
        train_summary=train_capture.summary(),
        detect_summary=detect_capture.summary(),
        trained=trained,
        detection=detection,
        infection_seconds=infection_seconds,
    )


class TestStagedEquivalence:
    @pytest.fixture(scope="class")
    def monolith(self):
        return monolithic_full_experiment(SCENARIO, TRAIN, DETECT)

    def test_staged_matches_monolith(self, monolith):
        staged = run_full_experiment(SCENARIO, TRAIN, DETECT)
        assert staged.table1() == monolith.table1()
        assert staged.training_metrics() == monolith.training_metrics()
        assert staged.train_summary == monolith.train_summary
        assert staged.detect_summary == monolith.detect_summary
        assert staged.infection_seconds == monolith.infection_seconds

    def test_cached_rerun_executes_nothing_and_matches(self, monolith, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        first, cold = run_experiment_pipeline(SCENARIO, TRAIN, DETECT, store=store)
        assert set(cold.executed) == {
            "build", "capture-train", "train-models", "capture-detect", "detect"
        }
        second, warm = run_experiment_pipeline(SCENARIO, TRAIN, DETECT, store=store)
        assert warm.executed == []
        assert len(warm.cache_hits) == 5
        assert second.table1() == monolith.table1()
        assert second.training_metrics() == monolith.training_metrics()
        assert second.table2() == first.table2()
        # Even the wall-clock fit time is replayed from the artifact.
        assert [t.fit_seconds for t in second.trained] == [
            t.fit_seconds for t in first.trained
        ]

    def test_fault_flow_roundtrips_through_cache(self, tmp_path):
        from repro.testbed import run_fault_experiment

        store = ArtifactStore(tmp_path / "cache")
        first = run_fault_experiment(SCENARIO, TRAIN, DETECT, store=store)
        second = run_fault_experiment(SCENARIO, TRAIN, DETECT, store=store)
        # The clean-prefix stages are shared with the full experiment;
        # the cached replay reproduces the fault bookkeeping exactly.
        assert second.fault_table() == first.fault_table()
        assert second.fault_events == first.fault_events
        assert second.supervisor_events == first.supervisor_events
        assert second.restarts == first.restarts
        assert second.fault_plan == first.fault_plan
        assert second.table1() == first.table1()
