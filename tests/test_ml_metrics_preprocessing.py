"""Tests for metrics, scalers, and splits."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml import (
    StandardScaler,
    accuracy_score,
    confusion_matrix,
    evaluate_classifier,
    f1_score,
    precision_score,
    recall_score,
    train_test_split,
)
from repro.ml.preprocessing import MinMaxScaler, NotFittedError, one_hot


class TestMetrics:
    def test_perfect_prediction(self):
        y = [0, 1, 1, 0]
        assert accuracy_score(y, y) == 1.0
        assert precision_score(y, y) == 1.0
        assert recall_score(y, y) == 1.0
        assert f1_score(y, y) == 1.0

    def test_known_confusion(self):
        y_true = [1, 1, 1, 0, 0, 0]
        y_pred = [1, 1, 0, 0, 0, 1]
        matrix = confusion_matrix(y_true, y_pred)
        # tn=2 fp=1 / fn=1 tp=2
        assert matrix.tolist() == [[2, 1], [1, 2]]
        assert accuracy_score(y_true, y_pred) == pytest.approx(4 / 6)
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_zero_division_no_predicted_positives(self):
        """The paper's §IV-D division-by-zero case: all-benign windows."""
        y_true = [1, 1]
        y_pred = [0, 0]
        assert precision_score(y_true, y_pred) == 0.0
        assert precision_score(y_true, y_pred, zero_division=1.0) == 1.0
        assert f1_score(y_true, y_pred) == 0.0

    def test_zero_division_no_actual_positives(self):
        y_true = [0, 0]
        y_pred = [0, 1]
        assert recall_score(y_true, y_pred) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_report_string(self):
        report = evaluate_classifier([0, 1, 1, 0], [0, 1, 0, 0])
        text = str(report)
        assert "accuracy=0.7500" in text
        assert "tp=1" in text

    @given(
        arrays(np.int64, st.integers(1, 60), elements=st.integers(0, 1)),
        arrays(np.int64, st.integers(1, 60), elements=st.integers(0, 1)),
    )
    def test_property_f1_between_precision_recall_extremes(self, a, b):
        n = min(len(a), len(b))
        y_true, y_pred = a[:n], b[:n]
        p = precision_score(y_true, y_pred)
        r = recall_score(y_true, y_pred)
        f1 = f1_score(y_true, y_pred)
        assert 0.0 <= f1 <= 1.0
        assert f1 <= max(p, r) + 1e-12
        if p > 0 and r > 0:
            assert f1 >= min(p, r) - 1e-12

    @given(arrays(np.int64, st.integers(1, 60), elements=st.integers(0, 1)))
    def test_property_confusion_sums_to_n(self, y):
        rng = np.random.default_rng(0)
        y_pred = rng.integers(0, 2, size=len(y))
        assert confusion_matrix(y, y_pred).sum() == len(y)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(1)
        X = rng.normal(5, 3, (200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0, atol=1e-9)
        np.testing.assert_allclose(Z.std(axis=0), 1, atol=1e-9)

    def test_constant_column_passthrough(self):
        X = np.array([[1.0, 7.0], [2.0, 7.0], [3.0, 7.0]])
        Z = StandardScaler().fit_transform(X)
        assert not np.isnan(Z).any()
        np.testing.assert_allclose(Z[:, 1], 0.0)

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 2, (50, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))


class TestMinMaxScaler:
    def test_range_is_unit_interval(self):
        rng = np.random.default_rng(3)
        X = rng.normal(0, 10, (100, 3))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= 0.0 and Z.max() <= 1.0

    def test_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.zeros((2, 2)))


class TestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(100, 1)
        y = np.array([0] * 50 + [1] * 50)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.3, seed=0)
        assert len(Xtr) == 70 and len(Xte) == 30

    def test_stratified_preserves_balance(self):
        y = np.array([0] * 80 + [1] * 20)
        X = np.arange(100).reshape(100, 1)
        _, _, ytr, yte = train_test_split(X, y, test_fraction=0.25, seed=1)
        assert abs(ytr.mean() - 0.2) < 0.02
        assert abs(yte.mean() - 0.2) < 0.02

    def test_no_leakage(self):
        X = np.arange(40).reshape(40, 1)
        y = np.array([0, 1] * 20)
        Xtr, Xte, _, _ = train_test_split(X, y, seed=2)
        assert set(Xtr.ravel()).isdisjoint(set(Xte.ravel()))
        assert len(Xtr) + len(Xte) == 40

    def test_deterministic_by_seed(self):
        X = np.arange(40).reshape(40, 1)
        y = np.array([0, 1] * 20)
        a = train_test_split(X, y, seed=5)
        b = train_test_split(X, y, seed=5)
        np.testing.assert_array_equal(a[0], b[0])

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=1.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(5))


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        assert out.tolist() == [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
