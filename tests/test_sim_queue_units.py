"""Tests for drop-tail queues and unit parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.packet import Packet
from repro.sim.queue import DropTailQueue
from repro.sim.units import parse_rate, parse_size, parse_time


def pkt():
    return Packet(payload=b"x")


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(capacity=3)
        first, second = Packet(payload=b"1"), Packet(payload=b"2")
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second

    def test_drop_when_full(self):
        queue = DropTailQueue(capacity=2)
        assert queue.enqueue(pkt())
        assert queue.enqueue(pkt())
        assert not queue.enqueue(pkt())
        assert queue.dropped == 1
        assert len(queue) == 2

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue().dequeue() is None

    def test_peek_does_not_remove(self):
        queue = DropTailQueue()
        packet = pkt()
        queue.enqueue(packet)
        assert queue.peek() is packet
        assert len(queue) == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity=0)

    def test_counters(self):
        queue = DropTailQueue(capacity=1)
        queue.enqueue(pkt())
        queue.enqueue(pkt())
        queue.dequeue()
        assert (queue.enqueued, queue.dropped, queue.dequeued) == (1, 1, 1)

    def test_clear_counts_flushed(self):
        queue = DropTailQueue(capacity=8)
        for _ in range(5):
            queue.enqueue(pkt())
        queue.dequeue()
        queue.clear()
        assert queue.flushed == 4
        assert len(queue) == 0
        assert queue.enqueued == queue.dequeued + queue.flushed + len(queue)

    def test_repeated_clear_accumulates_flushed(self):
        queue = DropTailQueue(capacity=4)
        queue.enqueue(pkt())
        queue.clear()
        queue.enqueue(pkt())
        queue.enqueue(pkt())
        queue.clear()
        assert queue.flushed == 3

    @given(st.lists(st.booleans(), max_size=80), st.integers(1, 10))
    def test_property_occupancy_never_exceeds_capacity(self, ops, capacity):
        """Any enqueue/dequeue interleaving keeps occupancy within bounds."""
        queue = DropTailQueue(capacity=capacity)
        for is_enqueue in ops:
            if is_enqueue:
                queue.enqueue(pkt())
            else:
                queue.dequeue()
            assert 0 <= len(queue) <= capacity
        assert queue.enqueued - queue.dequeued == len(queue)

    @given(st.lists(st.integers(0, 2), max_size=80), st.integers(1, 10))
    def test_property_conservation_with_flush(self, ops, capacity):
        """enqueued == dequeued + flushed + occupancy under any op mix."""
        queue = DropTailQueue(capacity=capacity)
        for op in ops:
            if op == 0:
                queue.enqueue(pkt())
            elif op == 1:
                queue.dequeue()
            else:
                queue.clear()
            assert queue.enqueued == queue.dequeued + queue.flushed + len(queue)


class TestUnits:
    @pytest.mark.parametrize(
        "text,expected",
        [("100Mbps", 100e6), ("1Gbps", 1e9), ("9600bps", 9600.0), ("250kbps", 250e3), (42, 42.0)],
    )
    def test_parse_rate(self, text, expected):
        assert parse_rate(text) == expected

    @pytest.mark.parametrize(
        "text,expected",
        [("50ms", 0.05), ("6.56us", 6.56e-6), ("2s", 2.0), ("1min", 60.0), ("1h", 3600.0), (0.5, 0.5)],
    )
    def test_parse_time(self, text, expected):
        assert parse_time(text) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "text,expected",
        [("10MB", 10_000_000), ("1KiB", 1024), ("3b", 3), ("2GiB", 2 * 1024**3)],
    )
    def test_parse_size(self, text, expected):
        assert parse_size(text) == expected

    def test_bare_number_string(self):
        assert parse_rate("1000") == 1000.0

    @pytest.mark.parametrize("bad", ["fast", "Mbps", "10 lightyears"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_rate(bad)
