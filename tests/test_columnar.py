"""Tests for the columnar record store and vectorized feature path.

The contract under test: the vectorized pipeline (RecordBatch +
compute_batch_statistics + basic_features_batch) is numerically
interchangeable with the legacy per-record implementations to 1e-9.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.capture import TrafficDataset, synthetic_capture
from repro.features import (
    FeatureExtractor,
    RecordBatch,
    as_batch,
    basic_features,
    basic_features_batch,
    compute_window_statistics,
    compute_window_statistics_legacy,
    iter_windows,
)
from repro.sim.packet import PROTO_TCP, PROTO_UDP, TcpFlags
from repro.sim.tracing import PacketRecord


def record(
    ts=0.0,
    src=1,
    dst=2,
    sport=1000,
    dport=80,
    proto=PROTO_TCP,
    flags=int(TcpFlags.ACK),
    size=60,
    seq=0,
    label=0,
    attack=None,
):
    return PacketRecord(ts, src, dst, proto, sport, dport, size, flags, seq, label, attack)


#: Randomized single-window record generator for the equivalence tests:
#: small cardinalities force collisions so the set-algebra statistics
#: (SYN-without-ACK, short-lived, repeated attempts) take every branch.
record_strategy = st.builds(
    record,
    ts=st.floats(min_value=0.0, max_value=0.999),
    src=st.integers(1, 5),
    dst=st.integers(1, 4),
    sport=st.integers(1000, 1006),
    dport=st.sampled_from([80, 443, 53, 9999]),
    proto=st.sampled_from([PROTO_TCP, PROTO_UDP, 1]),
    flags=st.integers(0, 0x3F),
    size=st.integers(40, 1500),
    seq=st.integers(0, 2**32 - 1),
    label=st.integers(0, 1),
)


class TestRecordBatch:
    def test_round_trip(self):
        records = [record(ts=0.1, attack="syn_flood", label=1), record(ts=0.5)]
        assert RecordBatch.from_records(records).to_records() == records

    def test_unsorted_input_stable_sorted(self):
        records = [record(ts=2.0, sport=1), record(ts=1.0), record(ts=2.0, sport=2)]
        batch = RecordBatch.from_records(records)
        assert batch.timestamp.tolist() == [1.0, 2.0, 2.0]
        # Stable: the two ts=2.0 records keep their relative order.
        assert batch.src_port.tolist() == [1000, 1, 2]

    def test_len_and_empty(self):
        assert len(RecordBatch.empty()) == 0
        assert len(RecordBatch.from_records([record()])) == 1

    def test_slice_is_zero_copy(self):
        batch = RecordBatch.from_records([record(ts=t / 10) for t in range(10)])
        view = batch.slice(2, 5)
        assert len(view) == 3
        assert view.timestamp.base is batch.timestamp

    def test_flag_masks_match_record_properties(self):
        records = [
            record(flags=f, proto=p)
            for f in range(0x40)
            for p in (PROTO_TCP, PROTO_UDP)
        ]
        batch = RecordBatch.from_records(records)
        for i, r in enumerate(batch.to_records()):
            assert batch.is_syn[i] == r.is_syn
            assert batch.is_ack[i] == r.is_ack
            assert batch.is_fin[i] == r.is_fin
            assert batch.is_rst[i] == bool(r.tcp_flags & 0x04)
            assert batch.is_tcp[i] == r.is_tcp
            assert batch.is_udp[i] == r.is_udp

    def test_window_slices_match_iter_windows(self):
        rng = np.random.default_rng(3)
        records = [record(ts=float(t)) for t in np.sort(rng.uniform(0, 8, 100))]
        batch = RecordBatch.from_records(records)
        sliced = {
            index: window.to_records()
            for index, window in batch.window_slices(1.0)
        }
        legacy = dict(iter_windows(records, 1.0))
        assert sliced == legacy

    def test_as_batch_passthrough(self):
        batch = RecordBatch.from_records([record()])
        assert as_batch(batch) is batch
        assert isinstance(as_batch([record()]), RecordBatch)

    def test_window_slices_rejects_bad_window(self):
        with pytest.raises(ValueError):
            list(RecordBatch.from_records([record()]).window_slices(0.0))


class TestVectorizedStatisticsEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(record_strategy, min_size=0, max_size=60))
    def test_matches_legacy_on_random_windows(self, records):
        vectorized = compute_window_statistics(records, 1.0).to_array()
        legacy = compute_window_statistics_legacy(records, 1.0).to_array()
        np.testing.assert_allclose(vectorized, legacy, atol=1e-9, rtol=0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(record_strategy, min_size=1, max_size=40),
        st.sampled_from([0.5, 1.0, 2.0]),
    )
    def test_matches_legacy_for_window_lengths(self, records, window_seconds):
        vectorized = compute_window_statistics(records, window_seconds).to_array()
        legacy = compute_window_statistics_legacy(records, window_seconds).to_array()
        np.testing.assert_allclose(vectorized, legacy, atol=1e-9, rtol=0)

    def test_synthetic_capture_windows(self):
        capture = synthetic_capture(3_000, duration=10.0, seed=11)
        for _, window in capture.to_batch().window_slices(1.0):
            vectorized = compute_window_statistics(window).to_array()
            legacy = compute_window_statistics_legacy(window.to_records()).to_array()
            np.testing.assert_allclose(vectorized, legacy, atol=1e-9, rtol=0)


class TestVectorizedBasicFeatures:
    @pytest.mark.parametrize("include_ips", [False, True])
    @pytest.mark.parametrize("include_timestamp", [False, True])
    @pytest.mark.parametrize("include_details", [False, True])
    def test_matches_per_record(self, include_ips, include_timestamp, include_details):
        rng = np.random.default_rng(5)
        records = [
            record(
                ts=float(t),
                src=int(rng.integers(1, 9)),
                flags=int(rng.integers(0, 0x40)),
                seq=int(rng.integers(0, 2**32)),
                proto=int(rng.choice([PROTO_TCP, PROTO_UDP])),
            )
            for t in np.sort(rng.uniform(0, 3, 50))
        ]
        batch = RecordBatch.from_records(records)
        vectorized = basic_features_batch(
            batch, include_ips, include_timestamp, include_details
        )
        legacy = np.stack(
            [
                basic_features(r, include_ips, include_timestamp, include_details)
                for r in records
            ]
        )
        np.testing.assert_allclose(vectorized, legacy, atol=1e-9, rtol=0)


class TestVectorizedTransformEquivalence:
    @pytest.mark.parametrize("stat_set", ["paper", "normalized", "extended", "none"])
    def test_transform_matches_legacy(self, stat_set):
        capture = synthetic_capture(1_500, duration=8.0, seed=23)
        extractor = FeatureExtractor(
            window_seconds=1.0, include_details=True, stat_set=stat_set
        )
        X_legacy, y_legacy, w_legacy = extractor.transform_legacy(capture.records)
        X_vector, y_vector, w_vector = extractor.transform(capture.to_batch())
        np.testing.assert_allclose(X_vector, X_legacy, atol=1e-9, rtol=0)
        np.testing.assert_array_equal(y_vector, y_legacy)
        np.testing.assert_array_equal(w_vector, w_legacy)

    def test_transform_window_matches_legacy(self):
        capture = synthetic_capture(400, duration=1.0, seed=2)
        extractor = FeatureExtractor(include_details=True, stat_set="extended")
        np.testing.assert_allclose(
            extractor.transform_window(capture.to_batch()),
            extractor.transform_window_legacy(capture.records),
            atol=1e-9,
            rtol=0,
        )

    def test_transform_accepts_records_or_batch(self):
        capture = synthetic_capture(300, duration=2.0, seed=4)
        extractor = FeatureExtractor()
        X_records, _, _ = extractor.transform(capture.records)
        X_batch, _, _ = extractor.transform(capture.to_batch())
        np.testing.assert_array_equal(X_records, X_batch)

    def test_transform_unsorted_records_match_sorted(self):
        capture = synthetic_capture(300, duration=3.0, seed=9)
        shuffled = list(capture.records)
        np.random.default_rng(0).shuffle(shuffled)
        extractor = FeatureExtractor()
        X_sorted, y_sorted, w_sorted = extractor.transform(capture.records)
        X_shuffled, y_shuffled, w_shuffled = extractor.transform(shuffled)
        np.testing.assert_allclose(X_shuffled, X_sorted, atol=1e-9, rtol=0)
        np.testing.assert_array_equal(w_shuffled, w_sorted)

    def test_empty_transform(self):
        extractor = FeatureExtractor()
        X, y, w = extractor.transform(RecordBatch.empty())
        assert X.shape == (0, extractor.n_features)
        assert len(y) == 0 and len(w) == 0


class TestDatasetBatch:
    def test_to_batch_cached(self):
        dataset = TrafficDataset([record(ts=0.1), record(ts=0.2)])
        assert dataset.to_batch() is dataset.to_batch()

    def test_synthetic_capture_shape(self):
        capture = synthetic_capture(500, duration=5.0, malicious_fraction=0.3, seed=1)
        assert len(capture) == 500
        summary = capture.summary()
        assert 0 < summary.malicious < 500
        assert set(summary.by_attack) <= {"syn_flood", "udp_flood"}
        batch = capture.to_batch()
        assert np.all(np.diff(batch.timestamp) >= 0)
