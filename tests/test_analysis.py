"""Tests for the determinism linter (repro.analysis): rules, suppressions,
baseline round-trips, and the ``ddoshield lint`` CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    diff_findings,
    format_json,
    format_text,
    iter_rules,
    lint_paths,
    lint_source,
)
from repro.analysis.report import fingerprint_all
from repro.cli import main

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent


def lint_fixture(name: str):
    source = (FIXTURES / name).read_text()
    return lint_source(source, path=f"tests/lint_fixtures/{name}")


def hits(findings) -> set[tuple[str, int]]:
    return {(f.rule_id, f.line) for f in findings}


# ----------------------------------------------------------------------
# Rule fixtures: each rule fires at exactly the expected file:line


class TestRuleFixtures:
    def test_rng001_global_random(self):
        findings, _ = lint_fixture("rng_global.py")
        assert hits(findings) == {
            ("RNG001", 10),
            ("RNG001", 14),
            ("RNG001", 15),
            ("RNG001", 16),
        }

    def test_rng002_numpy_global(self):
        findings, _ = lint_fixture("rng_numpy.py")
        assert hits(findings) == {
            ("RNG002", 9),
            ("RNG002", 10),
            ("RNG002", 14),
        }

    def test_time001_wall_clock(self):
        findings, _ = lint_fixture("wall_clock.py")
        assert hits(findings) == {
            ("TIME001", 9),
            ("TIME001", 13),
            ("TIME001", 17),
        }

    def test_time001_allowlisted_paths_are_exempt(self):
        source = "import time\nstamp = time.time()\n"
        findings, _ = lint_source(source, path="src/repro/features/bench.py")
        assert findings == []
        findings, _ = lint_source(source, path="src/repro/cli.py")
        assert findings == []
        findings, _ = lint_source(source, path="src/repro/sim/core.py")
        assert hits(findings) == {("TIME001", 2)}

    def test_ord001_set_iteration(self):
        findings, _ = lint_fixture("set_iteration.py")
        assert hits(findings) == {
            ("ORD001", 11),
            ("ORD001", 15),
            ("ORD001", 23),
            ("ORD001", 27),
            ("ORD001", 32),
        }

    def test_flt001_float_time_equality(self):
        findings, _ = lint_fixture("float_time_eq.py")
        assert hits(findings) == {
            ("FLT001", 5),
            ("FLT001", 9),
        }

    def test_mut001_mutable_defaults(self):
        findings, _ = lint_fixture("mutable_default.py")
        assert hits(findings) == {("MUT001", 4), ("MUT001", 8)}
        assert sum(1 for f in findings if f.line == 8) == 2  # dict() and set()

    def test_id001_id_tiebreak(self):
        findings, _ = lint_fixture("id_tiebreak.py")
        assert hits(findings) == {("ID001", 5), ("ID001", 9)}

    def test_findings_carry_hint_and_snippet(self):
        findings, _ = lint_fixture("rng_global.py")
        finding = next(f for f in findings if f.line == 10)
        assert "seeded" in finding.hint
        assert finding.snippet == "return random.uniform(0.0, 1.0)  # line 10: RNG001"
        assert finding.severity == "error"


# ----------------------------------------------------------------------
# Suppressions


class TestSuppressions:
    def test_lint_ok_comments_silence_rules(self):
        findings, suppressed = lint_fixture("suppressed.py")
        assert hits(findings) == {("TIME001", 20)}
        assert suppressed == 4  # TIME001, RNG001, and both under lint-ok[*]

    def test_suppression_is_rule_specific(self):
        source = (
            "import random\n"
            "x = random.random()  # repro: lint-ok[TIME001]\n"
        )
        findings, suppressed = lint_source(source, path="m.py")
        assert hits(findings) == {("RNG001", 2)}  # wrong id: not silenced
        assert suppressed == 0


# ----------------------------------------------------------------------
# Baseline round-trip


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings, _ = lint_fixture("rng_global.py")
        baseline = Baseline.from_findings(findings)
        path = baseline.save(tmp_path / "baseline.json")
        reloaded = Baseline.load(path)
        assert len(reloaded) == len(findings)
        report = diff_findings(findings, reloaded)
        assert report.ok
        assert len(report.baselined) == len(findings)
        assert report.new == [] and report.stale_fingerprints == []

    def test_new_findings_not_masked_by_baseline(self):
        old, _ = lint_fixture("rng_global.py")
        baseline = Baseline.from_findings(old)
        extra, _ = lint_source("import time\nt = time.time()\n", path="other.py")
        report = diff_findings(old + extra, baseline)
        assert not report.ok
        assert hits(report.new) == {("TIME001", 2)}

    def test_fixed_findings_become_stale(self):
        findings, _ = lint_fixture("rng_global.py")
        baseline = Baseline.from_findings(findings)
        report = diff_findings(findings[:-1], baseline)
        assert report.ok  # fixing code never fails the lint
        assert len(report.stale_fingerprints) == 1

    def test_fingerprints_survive_line_shifts(self):
        source = "import random\nx = random.random()\n"
        shifted = "import random\n# a new comment pushes the line down\nx = random.random()\n"
        before, _ = lint_source(source, path="m.py")
        after, _ = lint_source(shifted, path="m.py")
        assert set(fingerprint_all(before)) == set(fingerprint_all(after))

    def test_duplicate_snippets_get_distinct_fingerprints(self):
        source = "import random\nx = random.random()\nx = random.random()\n"
        findings, _ = lint_source(source, path="m.py")
        keys = fingerprint_all(findings)
        assert len(keys) == 2

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0

    def test_version_mismatch_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(bad)


# ----------------------------------------------------------------------
# Formatting, registry, tree hygiene, CLI


class TestReporting:
    def test_text_format_lists_new_findings(self):
        findings, _ = lint_fixture("wall_clock.py")
        report = diff_findings(findings, Baseline(), files_checked=1)
        text = format_text(report)
        assert "tests/lint_fixtures/wall_clock.py:9" in text
        assert "[TIME001]" in text
        assert "3 new finding(s)" in text

    def test_json_format_is_parseable(self):
        findings, _ = lint_fixture("wall_clock.py")
        report = diff_findings(findings, Baseline(), files_checked=1)
        payload = json.loads(format_json(report))
        assert payload["ok"] is False
        assert len(payload["new"]) == 3
        assert payload["new"][0]["rule_id"] == "TIME001"

    def test_registry_exposes_all_rules(self):
        ids = {rule.rule_id for rule in iter_rules()}
        assert {"RNG001", "RNG002", "TIME001", "ORD001", "FLT001",
                "MUT001", "ID001"} <= ids

    def test_rule_subset_selection(self):
        only = iter_rules(only=["RNG001"])
        assert [r.rule_id for r in only] == ["RNG001"]
        with pytest.raises(KeyError):
            iter_rules(only=["NOPE999"])

    def test_parity_rules_live_in_their_own_category(self):
        """``ddoshield lint`` never runs BAT*/ORD002 and vice versa."""
        determinism = {r.rule_id for r in iter_rules(category="determinism")}
        parity = {r.rule_id for r in iter_rules(category="parity")}
        assert parity == {"BAT001", "BAT002", "BAT003", "BAT004", "ORD002"}
        assert not determinism & parity
        # A textbook BAT001 divergence is invisible to the default linter.
        source = (FIXTURES / "parity_drift.py").read_text()
        findings, _ = lint_source(source, path="tests/lint_fixtures/parity_drift.py")
        assert findings == []


class TestParseFailures:
    def test_unparseable_file_becomes_an_error_finding(self):
        findings, suppressed, files = lint_paths(
            [FIXTURES / "unparseable.py"], root=REPO_ROOT
        )
        assert files == 1 and suppressed == 0
        assert [(f.rule_id, f.severity) for f in findings] == [
            ("PARSE001", "error")
        ]
        assert "does not parse" in findings[0].message
        assert findings[0].path == "tests/lint_fixtures/unparseable.py"

    def test_cli_fails_on_unparseable_file(self, capsys):
        rc = main([
            "lint", "--root", str(REPO_ROOT),
            "tests/lint_fixtures/unparseable.py", "--no-baseline",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "PARSE001" in out


class TestTreeIsClean:
    def test_src_repro_has_no_new_findings(self):
        """Acceptance: zero non-baselined findings on src/repro/**."""
        findings, suppressed, files = lint_paths(
            [REPO_ROOT / "src" / "repro"], root=REPO_ROOT
        )
        baseline = Baseline.load(REPO_ROOT / "analysis" / "baseline.json")
        report = diff_findings(
            findings, baseline, suppressed=suppressed, files_checked=files
        )
        assert report.ok, format_text(report)
        assert files > 50  # sanity: the walk actually covered the tree
        assert not report.stale_fingerprints, (
            "baseline has stale entries; refresh with "
            "`ddoshield lint --update-baseline`"
        )


class TestLintCli:
    def test_cli_green_against_committed_baseline(self, capsys):
        rc = main(["lint", "--root", str(REPO_ROOT), "src/repro"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "0 new finding(s)" in out

    def test_cli_json_and_exit_code_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        rc = main(["lint", "--root", str(tmp_path), "bad.py", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["new"][0]["rule_id"] == "RNG001"

    def test_cli_update_baseline_round_trip(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        rc = main(["lint", "--root", str(tmp_path), "bad.py", "--update-baseline"])
        assert rc == 0
        assert (tmp_path / "analysis" / "baseline.json").exists()
        capsys.readouterr()
        rc = main(["lint", "--root", str(tmp_path), "bad.py"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "1 baselined" in out
