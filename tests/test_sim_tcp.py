"""Tests for the TCP state machine: handshake, data, loss, teardown, floods."""

import random

import pytest

from repro.sim import CsmaLan, PacketProbe, Simulator
from repro.sim.address import Ipv4Address
from repro.sim.packet import Provenance, TcpFlags
from repro.sim.tcp import TcpState, _seq_le, _seq_lt


@pytest.fixture()
def net():
    sim = Simulator()
    lan = CsmaLan(sim, data_rate="100Mbps")
    return sim, lan


def connect(sim, lan, server, client, port=80, on_server_data=None):
    """Helper: establish a connection and return (server_socks, client_sock)."""
    server_socks = []

    def on_accept(sock):
        server_socks.append(sock)
        if on_server_data is not None:
            sock.on_data = on_server_data

    server.tcp.listen(port, on_accept)
    csock = client.tcp.socket()
    established = []
    csock.connect(server.address, port, lambda s: established.append(s))
    sim.run(until=2.0)
    assert established, "handshake did not complete"
    return server_socks, csock


class TestHandshake:
    def test_three_way_handshake(self, net):
        sim, lan = net
        server, client = lan.add_host("s"), lan.add_host("c")
        probe = lan.add_probe(PacketProbe())
        server_socks, csock = connect(sim, lan, server, client)
        assert csock.state is TcpState.ESTABLISHED
        assert server_socks[0].state is TcpState.ESTABLISHED
        flags = [r.tcp_flags for r in probe.records]
        assert flags[0] == int(TcpFlags.SYN)
        assert flags[1] == int(TcpFlags.SYN | TcpFlags.ACK)
        assert flags[2] == int(TcpFlags.ACK)

    def test_connect_to_closed_port_draws_rst(self, net):
        sim, lan = net
        server, client = lan.add_host("s"), lan.add_host("c")
        csock = client.tcp.socket()
        resets = []
        csock.on_reset = lambda s: resets.append(s)
        csock.connect(server.address, 9999)
        sim.run(until=2.0)
        assert resets
        assert csock.state is TcpState.CLOSED

    def test_connect_to_dead_host_times_out(self, net):
        sim, lan = net
        client = lan.add_host("c")
        lan.network.allocate()  # burn an address nobody owns
        csock = client.tcp.socket()
        resets = []
        csock.on_reset = lambda s: resets.append(s)
        csock.connect(Ipv4Address.parse("10.0.0.250"), 80)
        sim.run(until=120.0)
        assert resets
        assert csock.retransmissions > 0

    def test_double_connect_rejected(self, net):
        sim, lan = net
        server, client = lan.add_host("s"), lan.add_host("c")
        _, csock = connect(sim, lan, server, client)
        with pytest.raises(RuntimeError):
            csock.connect(server.address, 80)


class TestDataTransfer:
    def test_small_message_delivery(self, net):
        sim, lan = net
        server, client = lan.add_host("s"), lan.add_host("c")
        inbox = []
        connect(sim, lan, server, client,
                on_server_data=lambda s, p, n, a: inbox.append((p, n, a)))
        _, csock = inbox_client = None, None
        # reconnect with data
        csock = client.tcp.socket()
        csock.connect(server.address, 80, lambda s: s.send(b"GET /", app_data="req"))
        sim.run(until=4.0)
        assert (b"GET /", 5, "req") in inbox

    def test_bulk_transfer_segmented(self, net):
        sim, lan = net
        server, client = lan.add_host("s"), lan.add_host("c")
        total = []
        connect(sim, lan, server, client,
                on_server_data=lambda s, p, n, a: total.append(n))
        csock = client.tcp.socket()
        csock.connect(server.address, 80, lambda s: s.send(length=50_000))
        sim.run(until=10.0)
        assert sum(total) == 50_000
        assert max(total) <= 1400  # MSS

    def test_bidirectional_transfer(self, net):
        sim, lan = net
        server, client = lan.add_host("s"), lan.add_host("c")
        server_inbox, client_inbox = [], []

        def server_data(sock, payload, length, app_data):
            server_inbox.append(payload)
            sock.send(b"response:" + payload)

        connect(sim, lan, server, client, on_server_data=server_data)
        csock = client.tcp.socket()

        def on_est(sock):
            sock.on_data = lambda s, p, n, a: client_inbox.append(p)
            sock.send(b"query")

        csock.connect(server.address, 80, on_est)
        sim.run(until=4.0)
        assert server_inbox == [b"query"]
        assert client_inbox == [b"response:query"]

    def test_byte_counters(self, net):
        sim, lan = net
        server, client = lan.add_host("s"), lan.add_host("c")
        server_socks, _ = connect(sim, lan, server, client)
        csock = client.tcp.socket()
        csock.connect(server.address, 80, lambda s: s.send(length=10_000))
        sim.run(until=5.0)
        assert csock.bytes_sent == 10_000
        receiver = [s for s in server.tcp.sockets.values() if s.bytes_received][0]
        assert receiver.bytes_received == 10_000

    def test_send_before_established_rejected(self, net):
        sim, lan = net
        client = lan.add_host("c")
        with pytest.raises(RuntimeError):
            client.tcp.socket().send(b"x")


class TestLossRecovery:
    def test_retransmission_recovers_from_queue_drops(self):
        sim = Simulator()
        lan = CsmaLan(sim, data_rate="1Mbps")
        server = lan.add_host("s", queue_capacity=64)
        client = lan.add_host("c", queue_capacity=4)  # tiny TX queue -> drops
        received = []
        server.tcp.listen(80, lambda s: setattr(
            s, "on_data", lambda ss, p, n, a: received.append(n)))
        csock = client.tcp.socket()
        csock.connect(server.address, 80, lambda s: s.send(length=100_000))
        sim.run(until=120.0)
        assert sum(received) == 100_000
        assert csock.retransmissions > 0

    def test_no_duplicate_delivery_on_retransmit(self):
        sim = Simulator()
        lan = CsmaLan(sim, data_rate="1Mbps")
        server = lan.add_host("s")
        client = lan.add_host("c", queue_capacity=3)
        received = []
        server.tcp.listen(80, lambda s: setattr(
            s, "on_data", lambda ss, p, n, a: received.append(ss.bytes_received)))
        csock = client.tcp.socket()
        csock.connect(server.address, 80, lambda s: s.send(length=60_000))
        sim.run(until=120.0)
        # bytes_received strictly increases => no duplicate segment delivered
        assert received == sorted(set(received))
        assert received[-1] == 60_000


class TestRetransmissionTimer:
    """RTO backoff behaviour under injected total-loss windows."""

    def _arm_total_loss(self, sim, lan, duration):
        from repro.faults import FaultInjector, FaultPlan, FaultSpec

        injector = FaultInjector(sim, lan.channel, seed=1)
        injector.schedule_plan(
            FaultPlan.of(
                FaultSpec(kind="loss", start=0.0, duration=duration, rate=1.0)
            )
        )
        return injector

    def test_rto_doubles_per_timeout_up_to_max(self, net):
        from repro.sim.tcp import RTO_INITIAL, RTO_MAX

        sim, lan = net
        server, client = lan.add_host("s"), lan.add_host("c")
        _, csock = connect(sim, lan, server, client)
        assert csock._rto == RTO_INITIAL
        self._arm_total_loss(sim, lan, duration=60.0)
        csock.send(b"x")
        # Timeouts land at +1, +2, +4, +8 seconds: four doublings capped
        # at RTO_MAX, with the retry budget (5) not yet exhausted.
        sim.run(until=sim.now + 20.0)
        assert csock._rto == RTO_MAX
        assert csock.retransmissions >= 3
        assert csock.state is TcpState.ESTABLISHED

    def test_retry_budget_exhaustion_tears_down(self, net):
        sim, lan = net
        server, client = lan.add_host("s"), lan.add_host("c")
        resets = []
        _, csock = connect(sim, lan, server, client)
        csock.on_reset = lambda s: resets.append(s)
        self._arm_total_loss(sim, lan, duration=120.0)
        csock.send(b"x")
        sim.run(until=sim.now + 60.0)
        assert csock.state is TcpState.CLOSED
        assert resets

    def test_connection_survives_loss_window_and_resets_rto(self, net):
        from repro.sim.tcp import RTO_INITIAL

        sim, lan = net
        server, client = lan.add_host("s"), lan.add_host("c")
        received = []
        _, csock = connect(
            sim, lan, server, client,
            on_server_data=lambda s, p, n, a: received.append(n),
        )
        # A 6-second blackout is shorter than the ~31s retry budget: the
        # transfer must stall, retransmit through, and complete.
        self._arm_total_loss(sim, lan, duration=6.0)
        csock.send(length=5_000)
        sim.run(until=sim.now + 30.0)
        assert sum(received) == 5_000
        assert csock.retransmissions > 0
        assert csock.state is TcpState.ESTABLISHED
        # A successful ACK resets the backoff to the initial RTO.
        assert csock._rto == RTO_INITIAL


class TestTeardown:
    def test_fin_close_both_sides(self, net):
        sim, lan = net
        server, client = lan.add_host("s"), lan.add_host("c")
        closed = []

        def on_accept(sock):
            sock.on_close = lambda s: (closed.append("server"), s.close())

        server.tcp.listen(80, on_accept)
        csock = client.tcp.socket()
        csock.on_close = lambda s: closed.append("client")
        csock.connect(server.address, 80, lambda s: s.send(b"bye"))
        sim.schedule(1.0, csock.close)
        sim.run(until=60.0)
        assert "server" in closed
        assert csock.state in (TcpState.TIME_WAIT, TcpState.CLOSED)

    def test_abort_sends_rst(self, net):
        sim, lan = net
        server, client = lan.add_host("s"), lan.add_host("c")
        server_socks, csock = connect(sim, lan, server, client)
        resets = []
        server_socks[0].on_reset = lambda s: resets.append(1)
        csock.abort()
        sim.run(until=4.0)
        assert resets
        assert csock.state is TcpState.CLOSED

    def test_close_flushes_pending_data_first(self, net):
        sim, lan = net
        server, client = lan.add_host("s"), lan.add_host("c")
        received = []
        connect(sim, lan, server, client,
                on_server_data=lambda s, p, n, a: received.append(n))
        csock = client.tcp.socket()

        def on_est(sock):
            sock.send(length=20_000)
            sock.close()

        csock.connect(server.address, 80, on_est)
        sim.run(until=30.0)
        assert sum(received) == 20_000


class TestSynFlood:
    def flood(self, sim, attacker, victim, count, spoof=True):
        rng = random.Random(7)
        for i in range(count):
            src = (
                Ipv4Address.parse(f"172.16.{rng.randrange(256)}.{rng.randrange(1, 255)}")
                if spoof
                else None
            )
            sim.schedule(
                i * 0.0005,
                attacker.tcp.send_segment,
                rng.randrange(1024, 65535),
                victim.address,
                80,
                rng.randrange(2**32),
                0,
                TcpFlags.SYN,
                b"",
                None,
                None,
                Provenance("bot", True, "syn"),
                src,
            )

    def test_backlog_exhaustion_blocks_legit_clients(self, net):
        sim, lan = net
        victim, attacker, legit = lan.add_host("v"), lan.add_host("a"), lan.add_host("l")
        listener = victim.tcp.listen(80, lambda s: None, backlog=16)
        self.flood(sim, attacker, victim, 300)
        ok = []
        legit_sock = legit.tcp.socket()
        sim.schedule(0.05, legit_sock.connect, victim.address, 80, lambda s: ok.append(1))
        sim.run(until=1.0)
        assert len(listener.half_open) == 16
        assert listener.syn_dropped > 200
        assert not ok

    def test_backlog_recovers_after_timeout(self, net):
        sim, lan = net
        victim, attacker = lan.add_host("v"), lan.add_host("a")
        listener = victim.tcp.listen(80, lambda s: None, backlog=8)
        self.flood(sim, attacker, victim, 50)
        sim.run(until=30.0)
        assert len(listener.half_open) == 0

    def test_ack_flood_draws_rsts(self, net):
        sim, lan = net
        victim, attacker = lan.add_host("v"), lan.add_host("a")
        victim.tcp.listen(80, lambda s: None)
        rng = random.Random(3)
        for i in range(50):
            sim.schedule(
                i * 0.001,
                attacker.tcp.send_segment,
                rng.randrange(1024, 65535),
                victim.address,
                80,
                rng.randrange(2**32),
                rng.randrange(2**32),
                TcpFlags.ACK,
            )
        sim.run(until=1.0)
        assert victim.tcp.rst_sent == 50

    def test_duplicate_port_listen_rejected(self, net):
        sim, lan = net
        victim = lan.add_host("v")
        victim.tcp.listen(80, lambda s: None)
        with pytest.raises(RuntimeError):
            victim.tcp.listen(80, lambda s: None)


class TestSequenceArithmetic:
    def test_lt_simple(self):
        assert _seq_lt(1, 2)
        assert not _seq_lt(2, 1)

    def test_lt_wraparound(self):
        assert _seq_lt(0xFFFFFFF0, 5)
        assert not _seq_lt(5, 0xFFFFFFF0)

    def test_le(self):
        assert _seq_le(7, 7)
        assert _seq_le(6, 7)
        assert not _seq_le(8, 7)
