"""Campaign runner: grid expansion, aggregates, parallel + cached runs."""

import time

import pytest

from repro.faults.plan import FaultPlan, FaultSpec
from repro.pipeline import (
    CampaignReport,
    CampaignSpec,
    RunRecord,
    execute_run_safe,
    expand_grid,
    run_campaign,
)
from repro.pipeline import campaign as campaign_mod
from repro.testbed import Scenario

TRAIN, DETECT = 20.0, 10.0


def poisoned_scenario(n_devices=2):
    """A scenario whose first capture deterministically raises.

    The fault plan kills a container that does not exist, so
    ``Testbed.apply_faults`` raises before any packets flow — the
    cheapest reproducible way to poison one grid cell.
    """
    return Scenario(
        n_devices=n_devices,
        fault_plan=FaultPlan.of(
            FaultSpec(kind="kill", start=1.0, duration=2.0, targets=("dev-99",))
        ),
    )


class TestCampaignSpec:
    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError, match="scenario"):
            CampaignSpec(scenarios=(), seeds=(1,))
        with pytest.raises(ValueError, match="seed"):
            CampaignSpec(scenarios=(Scenario(n_devices=2),), seeds=())

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValueError, match="label"):
            CampaignSpec(
                scenarios=(Scenario(n_devices=2),), seeds=(1,), labels=("a", "b")
            )

    def test_default_labels(self):
        spec = CampaignSpec(
            scenarios=(Scenario(n_devices=2), Scenario(n_devices=4)), seeds=(1,)
        )
        assert spec.scenario_labels() == ("s0-dev2", "s1-dev4")


class TestExpandGrid:
    def test_scenario_by_seed_in_grid_order(self):
        spec = CampaignSpec(
            scenarios=(Scenario(n_devices=2), Scenario(n_devices=3)),
            seeds=(5, 7),
            train_duration=TRAIN,
            detect_duration=DETECT,
        )
        runs = expand_grid(spec, cache_dir="cache")
        assert [(r.label, r.seed) for r in runs] == [
            ("s0-dev2", 5), ("s0-dev2", 7), ("s1-dev3", 5), ("s1-dev3", 7)
        ]
        # The grid seed overrides the scenario's own seed.
        assert all(r.scenario.seed == r.seed for r in runs)
        assert all(r.cache_dir == "cache" for r in runs)


def record(label, seed, table1, table2=()):
    return RunRecord(
        label=label, seed=seed, scenario={}, faults=False, infection_seconds=1.0,
        train_summary={}, detect_summary={},
        table1=[list(row) for row in table1],
        table2=[list(row) for row in table2],
        training_metrics=[], fault_table=None,
        stage_cache={}, elapsed_seconds=0.0,
    )


class TestCampaignReportAggregates:
    def test_table1_aggregate_groups_by_label_and_model(self):
        report = CampaignReport(records=[
            record("a", 1, [("RF", 90.0), ("CNN", 95.0)]),
            record("a", 2, [("RF", 94.0), ("CNN", 97.0)]),
            record("b", 1, [("RF", 80.0)]),
        ])
        agg = report.table1_aggregate()
        assert agg["a"]["RF"] == {"mean": 92.0, "min": 90.0, "max": 94.0, "n": 2.0}
        assert agg["a"]["CNN"]["mean"] == 96.0
        assert agg["b"]["RF"]["n"] == 1.0

    def test_table2_aggregate_means(self):
        report = CampaignReport(records=[
            record("a", 1, [], table2=[("RF", 10.0, 100.0, 50.0)]),
            record("a", 2, [], table2=[("RF", 30.0, 300.0, 50.0)]),
        ])
        agg = report.table2_aggregate()
        assert agg["a"]["RF"] == {
            "cpu_percent": 20.0, "memory_kb": 200.0, "model_size_kb": 50.0
        }

    def test_cache_accounting(self):
        rec = record("a", 1, [])
        rec.stage_cache = {
            "build": {"key": "k1", "cache_hit": True, "executed": False},
            "detect": {"key": "k2", "cache_hit": False, "executed": True},
        }
        report = CampaignReport(records=[rec])
        assert report.stages_total == 2
        assert report.cache_hits == 1
        assert report.stages_executed == 1
        assert report.cache_hit_rate == 0.5


class TestRunCampaign:
    def test_rejects_bad_jobs(self):
        spec = CampaignSpec(scenarios=(Scenario(n_devices=2),), seeds=(5,))
        with pytest.raises(ValueError, match="jobs"):
            run_campaign(spec, jobs=0)

    @pytest.fixture(scope="class")
    def small_spec(self):
        return CampaignSpec(
            scenarios=(Scenario(n_devices=2),),
            seeds=(5, 7),
            train_duration=TRAIN,
            detect_duration=DETECT,
        )

    @pytest.fixture(scope="class")
    def cold_run(self, small_spec, tmp_path_factory):
        """One parallel cold campaign; later tests reuse its warm cache."""
        cache = tmp_path_factory.mktemp("campaign-cache")
        return run_campaign(small_spec, jobs=2, cache_dir=cache), cache

    def test_parallel_campaign_executes_grid(self, cold_run):
        first, _ = cold_run
        assert len(first.records) == 2
        assert [r.seed for r in first.records] == [5, 7]  # grid order kept
        assert first.stages_executed == first.stages_total == 10
        assert all(r.table1 for r in first.records)
        # Different seeds produce genuinely different runs.
        assert first.records[0].table1 != first.records[1].table1

    def test_cached_repeat_executes_nothing(self, small_spec, cold_run):
        # Repeat against the warm cache: zero stages execute, every stage
        # is a hit, and the report content (timing aside) is identical.
        first, cache = cold_run
        second = run_campaign(small_spec, jobs=1, cache_dir=cache)
        assert second.stages_executed == 0
        assert second.cache_hits == second.stages_total == 10
        assert second.cache_hit_rate == 1.0
        assert second.to_dict(include_timing=False) == first.to_dict(include_timing=False)

    def test_report_renders(self, small_spec, cold_run):
        _, cache = cold_run
        report = run_campaign(small_spec, jobs=1, cache_dir=cache)
        text = report.format_text()
        assert "Table I aggregate" in text
        assert "Table II aggregate" in text
        assert "cache:" in text
        assert "FAILED" not in text
        payload = report.to_dict()
        assert payload["cache"]["stages_total"] == 10
        assert len(payload["runs"]) == 2
        assert "failures" not in payload


class TestExecuteRunSafe:
    def cell(self):
        return expand_grid(
            CampaignSpec(
                scenarios=(Scenario(n_devices=2),),
                seeds=(5,),
                train_duration=TRAIN,
                detect_duration=DETECT,
            )
        )[0]

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            execute_run_safe(self.cell(), max_retries=-1)

    def test_transient_failure_is_retried(self, monkeypatch):
        calls = []
        real = campaign_mod.execute_run

        def flaky(run):
            calls.append(run)
            if len(calls) == 1:
                raise RuntimeError("transient worker crash")
            return real(run)

        monkeypatch.setattr(campaign_mod, "execute_run", flaky)
        record = execute_run_safe(self.cell(), max_retries=1)
        assert not record.failed
        assert record.attempts == 2
        assert record.table1

    def test_exhausted_retries_yield_tombstone(self, monkeypatch):
        def doomed(run):
            raise RuntimeError("poisoned")

        monkeypatch.setattr(campaign_mod, "execute_run", doomed)
        record = execute_run_safe(self.cell(), max_retries=1)
        assert record.failed
        assert record.error == "RuntimeError: poisoned"
        assert record.attempts == 2
        assert record.table1 == [] and record.table2 == []
        assert record.stage_cache == {}

    def test_run_timeout_budget_enforced(self, monkeypatch):
        def slow(run):
            time.sleep(5.0)

        monkeypatch.setattr(campaign_mod, "execute_run", slow)
        start = time.monotonic()
        record = execute_run_safe(self.cell(), max_retries=0, run_timeout=0.2)
        assert time.monotonic() - start < 2.0
        assert record.failed
        assert "wall-clock" in record.error

    def test_tombstone_serializes_without_timing(self, monkeypatch):
        monkeypatch.setattr(
            campaign_mod, "execute_run", lambda run: (_ for _ in ()).throw(OSError("x"))
        )
        record = execute_run_safe(self.cell(), max_retries=0)
        payload = record.to_dict(include_timing=False)
        assert payload["error"] == "OSError: x"
        assert "attempts" not in payload  # timing-gated
        assert record.to_dict()["attempts"] == 1


class TestPoisonedCampaign:
    @pytest.fixture(scope="class")
    def spec(self):
        return CampaignSpec(
            scenarios=(Scenario(n_devices=2), poisoned_scenario()),
            seeds=(5,),
            train_duration=TRAIN,
            detect_duration=DETECT,
            labels=("good", "poisoned"),
        )

    @pytest.fixture(scope="class")
    def outcome(self, spec, tmp_path_factory):
        cache = tmp_path_factory.mktemp("poisoned-cache")
        return run_campaign(spec, jobs=1, cache_dir=cache, max_retries=1), cache

    def test_campaign_completes_with_one_failed_record(self, outcome):
        report, _ = outcome
        assert len(report.records) == 2
        assert report.runs_failed == 1
        good, bad = report.records
        assert not good.failed and good.table1
        assert bad.failed
        assert "dev-99" in bad.error
        assert bad.attempts == 2  # one bounded retry happened

    def test_failures_surface_in_report(self, outcome):
        report, _ = outcome
        text = report.format_text()
        assert "1 failed" in text
        assert "FAILED" in text and "dev-99" in text
        payload = report.to_dict()
        assert payload["failures"] == [
            {
                "label": "poisoned",
                "seed": 5,
                "error": report.records[1].error,
                "attempts": 2,
            }
        ]

    def test_aggregates_skip_failed_cells(self, outcome):
        report, _ = outcome
        assert "poisoned" not in report.table1_aggregate()
        assert report.table1_aggregate()["good"]

    def test_cache_accounting_survives_rerun(self, spec, outcome):
        report, cache = outcome
        assert report.stages_total == 5  # the failed cell contributes none
        again = run_campaign(spec, jobs=1, cache_dir=cache, max_retries=0)
        assert again.runs_failed == 1
        assert again.records[1].attempts == 1  # max_retries=0: no retry
        assert again.cache_hits == again.stages_total == 5  # good cell warm
        assert again.stages_executed == 0

    def test_pool_workers_tolerate_poison(self, spec, outcome):
        # Same grid through the multiprocessing path: tombstones must
        # pickle back, and the good cell rides the warm cache.
        _, cache = outcome
        report = run_campaign(spec, jobs=2, cache_dir=cache, max_retries=0)
        assert [record.failed for record in report.records] == [False, True]
        assert "dev-99" in report.records[1].error


class TestRecoveryAggregate:
    def recovery(self, retained):
        return {
            "goodput_retained_pct": retained,
            "time_to_mitigate": 1.0,
            "time_to_recovery": 0.0,
            "collateral_block_rate": 0.0,
            "blocked_sources": 2,
            "collateral_blocks": 0,
            "baseline_goodput": 100.0,
            "attack_goodput": retained,
        }

    def test_means_defended_runs_per_label(self):
        a, b = record("d", 1, []), record("d", 2, [])
        a.recovery = self.recovery(60.0)
        b.recovery = self.recovery(80.0)
        plain = record("u", 1, [])
        report = CampaignReport(records=[a, b, plain])
        agg = report.recovery_aggregate()
        assert agg["d"]["goodput_retained_pct"] == 70.0
        assert agg["d"]["n"] == 2.0
        assert "u" not in agg
        text = report.format_text()
        assert "Recovery aggregate" in text
        assert "goodput retained=70.0%" in text

    def test_absent_when_no_defended_runs(self):
        report = CampaignReport(records=[record("u", 1, [])])
        assert report.recovery_aggregate() == {}
        assert "Recovery aggregate" not in report.format_text()
        assert "recovery_aggregate" not in report.to_dict()
