"""Campaign runner: grid expansion, aggregates, parallel + cached runs."""

import pytest

from repro.pipeline import (
    CampaignReport,
    CampaignSpec,
    RunRecord,
    expand_grid,
    run_campaign,
)
from repro.testbed import Scenario

TRAIN, DETECT = 20.0, 10.0


class TestCampaignSpec:
    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError, match="scenario"):
            CampaignSpec(scenarios=(), seeds=(1,))
        with pytest.raises(ValueError, match="seed"):
            CampaignSpec(scenarios=(Scenario(n_devices=2),), seeds=())

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValueError, match="label"):
            CampaignSpec(
                scenarios=(Scenario(n_devices=2),), seeds=(1,), labels=("a", "b")
            )

    def test_default_labels(self):
        spec = CampaignSpec(
            scenarios=(Scenario(n_devices=2), Scenario(n_devices=4)), seeds=(1,)
        )
        assert spec.scenario_labels() == ("s0-dev2", "s1-dev4")


class TestExpandGrid:
    def test_scenario_by_seed_in_grid_order(self):
        spec = CampaignSpec(
            scenarios=(Scenario(n_devices=2), Scenario(n_devices=3)),
            seeds=(5, 7),
            train_duration=TRAIN,
            detect_duration=DETECT,
        )
        runs = expand_grid(spec, cache_dir="cache")
        assert [(r.label, r.seed) for r in runs] == [
            ("s0-dev2", 5), ("s0-dev2", 7), ("s1-dev3", 5), ("s1-dev3", 7)
        ]
        # The grid seed overrides the scenario's own seed.
        assert all(r.scenario.seed == r.seed for r in runs)
        assert all(r.cache_dir == "cache" for r in runs)


def record(label, seed, table1, table2=()):
    return RunRecord(
        label=label, seed=seed, scenario={}, faults=False, infection_seconds=1.0,
        train_summary={}, detect_summary={},
        table1=[list(row) for row in table1],
        table2=[list(row) for row in table2],
        training_metrics=[], fault_table=None,
        stage_cache={}, elapsed_seconds=0.0,
    )


class TestCampaignReportAggregates:
    def test_table1_aggregate_groups_by_label_and_model(self):
        report = CampaignReport(records=[
            record("a", 1, [("RF", 90.0), ("CNN", 95.0)]),
            record("a", 2, [("RF", 94.0), ("CNN", 97.0)]),
            record("b", 1, [("RF", 80.0)]),
        ])
        agg = report.table1_aggregate()
        assert agg["a"]["RF"] == {"mean": 92.0, "min": 90.0, "max": 94.0, "n": 2.0}
        assert agg["a"]["CNN"]["mean"] == 96.0
        assert agg["b"]["RF"]["n"] == 1.0

    def test_table2_aggregate_means(self):
        report = CampaignReport(records=[
            record("a", 1, [], table2=[("RF", 10.0, 100.0, 50.0)]),
            record("a", 2, [], table2=[("RF", 30.0, 300.0, 50.0)]),
        ])
        agg = report.table2_aggregate()
        assert agg["a"]["RF"] == {
            "cpu_percent": 20.0, "memory_kb": 200.0, "model_size_kb": 50.0
        }

    def test_cache_accounting(self):
        rec = record("a", 1, [])
        rec.stage_cache = {
            "build": {"key": "k1", "cache_hit": True, "executed": False},
            "detect": {"key": "k2", "cache_hit": False, "executed": True},
        }
        report = CampaignReport(records=[rec])
        assert report.stages_total == 2
        assert report.cache_hits == 1
        assert report.stages_executed == 1
        assert report.cache_hit_rate == 0.5


class TestRunCampaign:
    def test_rejects_bad_jobs(self):
        spec = CampaignSpec(scenarios=(Scenario(n_devices=2),), seeds=(5,))
        with pytest.raises(ValueError, match="jobs"):
            run_campaign(spec, jobs=0)

    @pytest.fixture(scope="class")
    def small_spec(self):
        return CampaignSpec(
            scenarios=(Scenario(n_devices=2),),
            seeds=(5, 7),
            train_duration=TRAIN,
            detect_duration=DETECT,
        )

    @pytest.fixture(scope="class")
    def cold_run(self, small_spec, tmp_path_factory):
        """One parallel cold campaign; later tests reuse its warm cache."""
        cache = tmp_path_factory.mktemp("campaign-cache")
        return run_campaign(small_spec, jobs=2, cache_dir=cache), cache

    def test_parallel_campaign_executes_grid(self, cold_run):
        first, _ = cold_run
        assert len(first.records) == 2
        assert [r.seed for r in first.records] == [5, 7]  # grid order kept
        assert first.stages_executed == first.stages_total == 10
        assert all(r.table1 for r in first.records)
        # Different seeds produce genuinely different runs.
        assert first.records[0].table1 != first.records[1].table1

    def test_cached_repeat_executes_nothing(self, small_spec, cold_run):
        # Repeat against the warm cache: zero stages execute, every stage
        # is a hit, and the report content (timing aside) is identical.
        first, cache = cold_run
        second = run_campaign(small_spec, jobs=1, cache_dir=cache)
        assert second.stages_executed == 0
        assert second.cache_hits == second.stages_total == 10
        assert second.cache_hit_rate == 1.0
        assert second.to_dict(include_timing=False) == first.to_dict(include_timing=False)

    def test_report_renders(self, small_spec, cold_run):
        _, cache = cold_run
        report = run_campaign(small_spec, jobs=1, cache_dir=cache)
        text = report.format_text()
        assert "Table I aggregate" in text
        assert "Table II aggregate" in text
        assert "cache:" in text
        payload = report.to_dict()
        assert payload["cache"]["stages_total"] == 10
        assert len(payload["runs"]) == 2
