"""Unit tests for experiment plumbing: ModelSpec views, result tables."""

import numpy as np
import pytest

from repro.features.statistical import (
    NORMALIZED_STATISTICAL_FEATURE_NAMES,
    PAPER_STATISTICAL_FEATURE_NAMES,
)
from repro.ids.meter import SustainabilityMetrics
from repro.ids.report import DetectionReport, WindowResult
from repro.ml.metrics import ClassificationReport
from repro.testbed import ExperimentResult, ModelSpec, Scenario, TrainedModel
from repro.testbed.experiment import _IdentityScaler


class TestModelSpec:
    def test_make_extractor_uses_view(self):
        spec = ModelSpec(
            "x", lambda n: None, stat_set="normalized",
            include_details=True, include_timestamp=False,
        )
        extractor = spec.make_extractor(2.0)
        assert extractor.window_seconds == 2.0
        assert extractor.stat_names == NORMALIZED_STATISTICAL_FEATURE_NAMES
        assert "timestamp" not in extractor.feature_names
        assert "is_syn" in extractor.feature_names

    def test_default_view_is_paper_literal(self):
        spec = ModelSpec("x", lambda n: None)
        extractor = spec.make_extractor(1.0)
        assert extractor.stat_names == PAPER_STATISTICAL_FEATURE_NAMES
        assert extractor.feature_names[0] == "timestamp"
        assert "is_syn" not in extractor.feature_names


class TestIdentityScaler:
    def test_passthrough(self):
        scaler = _IdentityScaler().fit(np.ones((2, 2)))
        X = np.arange(6).reshape(2, 3)
        np.testing.assert_array_equal(scaler.transform(X), X)


def make_result():
    scenario = Scenario(n_devices=2, seed=1)
    report = ClassificationReport(0.99, 0.98, 0.97, 0.975, np.array([[5, 1], [1, 5]]))
    trained = TrainedModel("RF", object(), _IdentityScaler(), None, report, 1.0, 50.0)
    detection = DetectionReport("RF")
    detection.windows.append(WindowResult(0, 0.0, 10, 0, 0, 0.9))
    detection.sustainability = SustainabilityMetrics(60.0, 100.0, 50.0, 800.0)
    from repro.capture import TrafficDataset

    summary = TrafficDataset([]).summary()
    return ExperimentResult(
        scenario=scenario,
        train_summary=summary,
        detect_summary=summary,
        trained=[trained],
        detection=[detection],
    )


class TestExperimentResult:
    def test_table1_rows(self):
        result = make_result()
        assert result.table1() == [("RF", pytest.approx(90.0))]

    def test_table2_rows(self):
        result = make_result()
        assert result.table2() == [("RF", 60.0, 100.0, 50.0)]

    def test_training_metrics_rows(self):
        result = make_result()
        ((name, acc, p, r, f1),) = result.training_metrics()
        assert name == "RF"
        assert (acc, p, r, f1) == (0.99, 0.98, 0.97, 0.975)

    def test_table2_skips_unmetered_models(self):
        result = make_result()
        unmetered = DetectionReport("CNN")
        unmetered.windows.append(WindowResult(0, 0.0, 10, 0, 0, 0.8))
        unmetered.sustainability = None
        result.detection.append(unmetered)
        # The metered row survives; the unmetered one is skipped, not a crash.
        assert result.table2() == [("RF", 60.0, 100.0, 50.0)]
        with pytest.raises(ValueError, match="CNN"):
            result.table2(strict=True)

    def test_table2_strict_ok_when_all_metered(self):
        result = make_result()
        assert result.table2(strict=True) == result.table2()


class TestSustainabilityMetrics:
    def test_str_includes_energy(self):
        metrics = SustainabilityMetrics(60.0, 100.0, 50.0, 812.5)
        text = str(metrics)
        assert "812.5 mJ/window" in text
        assert "cpu 60.00%" in text

    def test_energy_from_meter(self):
        from repro.ids.meter import IOT_WATTS, ResourceMeter

        meter = ResourceMeter(window_seconds=1.0, iot_cpu_scale=0.5)
        meter.start_window()
        _ = sum(i * i for i in range(100_000))
        meter.end_window()
        expected = 1000.0 * (meter.cpu_seconds_total / 0.5) * IOT_WATTS
        assert meter.energy_mj_per_window == pytest.approx(expected)
        assert meter.energy_mj_per_window > 0

    def test_energy_zero_without_windows(self):
        from repro.ids.meter import ResourceMeter

        assert ResourceMeter(1.0).energy_mj_per_window == 0.0
