"""Tests for the real-time IDS unit: monitor, engine, meter, report."""

import numpy as np
import pytest

from repro.features import FeatureExtractor
from repro.ids import RealTimeIds, ResourceMeter, TrafficMonitor
from repro.ids.report import DetectionReport, WindowResult
from repro.sim.packet import PROTO_TCP, TcpFlags
from repro.sim.tracing import PacketRecord


def record(ts, label=0, sport=40000, dport=80):
    return PacketRecord(
        timestamp=ts,
        src_ip=1,
        dst_ip=2,
        protocol=PROTO_TCP,
        src_port=sport,
        dst_port=dport,
        size=60,
        tcp_flags=int(TcpFlags.ACK),
        seq=100,
        label=label,
    )


class RequireScaledModel:
    """Asserts inputs look standardized (used by the scaler test)."""

    def predict(self, X):
        assert np.abs(X).max() < 100
        return np.zeros(len(X), dtype=int)


class ConstantModel:
    """Predicts a fixed class for every packet."""

    def __init__(self, value):
        self.value = value

    def predict(self, X):
        return np.full(len(X), self.value, dtype=int)


class OracleModel:
    """Uses a hidden lookup keyed by row order within each window."""

    def __init__(self, labels_by_call):
        self.labels_by_call = list(labels_by_call)
        self.calls = 0

    def predict(self, X):
        labels = self.labels_by_call[self.calls]
        self.calls += 1
        return np.asarray(labels)


def make_stream(seconds=4, per_window=10, malicious_windows=()):
    records = []
    for s in range(seconds):
        label = 1 if s in malicious_windows else 0
        for i in range(per_window):
            records.append(record(s + i / (per_window + 1), label=label))
    return records


class TestTrafficMonitor:
    def test_replay_forwards_in_order(self):
        seen = []
        monitor = TrafficMonitor(seen.append)
        stream = make_stream(2)
        monitor.replay(stream)
        assert seen == stream
        assert monitor.packets_seen == len(stream)

    def test_live_attach(self):
        from repro.sim.tracing import PacketProbe
        from repro.sim.packet import EthernetHeader, Ipv4Header, Packet, TcpHeader
        from repro.sim.address import Ipv4Address, MacAddress

        seen = []
        monitor = TrafficMonitor(seen.append)
        probe = PacketProbe()
        monitor.attach(probe)
        packet = Packet(
            eth=EthernetHeader(MacAddress(1), MacAddress(2)),
            ip=Ipv4Header(Ipv4Address(1), Ipv4Address(2), PROTO_TCP),
            tcp=TcpHeader(1, 2),
        )
        probe(packet, 0.5)
        assert len(seen) == 1


class TestRealTimeIds:
    def test_perfect_model_scores_one(self):
        ids = RealTimeIds(ConstantModel(0), "all-benign")
        report = ids.process(make_stream(3))
        assert report.mean_accuracy == 1.0
        assert report.n_windows == 3

    def test_wrong_model_scores_zero(self):
        ids = RealTimeIds(ConstantModel(1), "all-malicious")
        report = ids.process(make_stream(3))
        assert report.mean_accuracy == 0.0

    def test_mixed_windows(self):
        ids = RealTimeIds(ConstantModel(0), "all-benign")
        report = ids.process(make_stream(4, malicious_windows={1, 2}))
        assert report.mean_accuracy == pytest.approx(0.5)
        assert report.min_accuracy == 0.0

    def test_window_results_populated(self):
        ids = RealTimeIds(ConstantModel(1), "flagger")
        report = ids.process(make_stream(2, per_window=5, malicious_windows={1}))
        first, second = report.windows
        assert first.n_packets == 5
        assert first.n_malicious_true == 0
        assert first.n_malicious_predicted == 5
        assert second.accuracy == 1.0
        assert second.is_pure_malicious
        assert first.is_pure_benign

    def test_alerts_recorded_for_flagged_windows(self):
        ids = RealTimeIds(ConstantModel(1), "flagger")
        ids.process(make_stream(2, per_window=3))
        assert len(ids.alerts) == 2
        assert ids.alerts[0][1] == 3

    def test_sustainability_attached(self):
        ids = RealTimeIds(ConstantModel(0), "m")
        report = ids.process(make_stream(2))
        assert report.sustainability is not None
        assert report.sustainability.model_size_kb > 0
        assert report.sustainability.cpu_percent >= 0

    def test_per_model_scaler_applied(self):
        from repro.ml import StandardScaler

        extractor = FeatureExtractor()
        stream = make_stream(3)
        X, _, _ = extractor.transform(stream)
        scaler = StandardScaler().fit(X)
        ids = RealTimeIds(RequireScaledModel(), "m", extractor=extractor, scaler=scaler)
        report = ids.process(stream)
        assert report.n_windows == 3


class TestFinishOutageAccounting:
    """Regression tests for the trailing-outage fixes in finish(until=...)."""

    def test_total_blackout_yields_all_degraded_report(self):
        """Zero packets for the whole run must produce degraded verdicts
        covering [0, until), not an empty report."""
        ids = RealTimeIds(ConstantModel(0), "m")
        report = ids.process([], until=5.0)
        assert report.n_windows == 5
        assert [w.window_index for w in report.windows] == [0, 1, 2, 3, 4]
        assert all(w.is_degraded and w.n_packets == 0 for w in report.windows)
        assert report.availability == 0.0

    def test_final_partial_window_gets_verdict(self):
        """until=9.5 with packets only in window 0: windows 1..9 were
        live (window 9 partially) and all need verdicts."""
        ids = RealTimeIds(ConstantModel(0), "m")
        report = ids.process([record(0.5)], until=9.5)
        assert [w.window_index for w in report.windows] == list(range(10))
        assert report.windows[9].is_degraded

    def test_until_exactly_on_boundary(self):
        """until=10.0: windows 0..9 only — no phantom window 10."""
        ids = RealTimeIds(ConstantModel(0), "m")
        report = ids.process([record(0.5)], until=10.0)
        assert [w.window_index for w in report.windows] == list(range(10))

    def test_until_just_above_boundary_is_robust(self):
        """A float hair above the boundary must not conjure an extra
        empty window."""
        ids = RealTimeIds(ConstantModel(0), "m")
        report = ids.process([record(0.5)], until=10.0 + 1e-12)
        assert [w.window_index for w in report.windows] == list(range(10))

    def test_until_just_below_boundary(self):
        ids = RealTimeIds(ConstantModel(0), "m")
        report = ids.process([record(0.5)], until=9.999)
        assert [w.window_index for w in report.windows] == list(range(10))

    def test_until_before_last_seen_window_adds_nothing(self):
        ids = RealTimeIds(ConstantModel(0), "m")
        report = ids.process(make_stream(4), until=2.0)
        assert report.n_windows == 4

    def test_fractional_window_seconds(self):
        ids = RealTimeIds(ConstantModel(0), "m", window_seconds=0.5)
        report = ids.process([record(0.1)], until=1.25)
        # Windows: [0, .5) seen, [.5, 1) and [1, 1.25) outages.
        assert [w.window_index for w in report.windows] == [0, 1, 2]

    def test_blackout_without_until_stays_empty(self):
        ids = RealTimeIds(ConstantModel(0), "m")
        report = ids.process([])
        assert report.n_windows == 0

    def test_reorder_counters_exposed(self):
        ids = RealTimeIds(ConstantModel(0), "m")
        ids.process(make_stream(2))
        assert ids.records_reordered == 0
        assert ids.records_dropped_late == 0


class TestResourceMeter:
    def test_accumulates_cpu_and_memory(self):
        meter = ResourceMeter(window_seconds=1.0)
        meter.start_window()
        _ = [i**2 for i in range(20_000)]  # burn some cpu / allocate
        meter.end_window()
        assert meter.windows_measured == 1
        assert meter.cpu_seconds_total > 0
        assert meter.memory_kb > 0

    def test_end_without_start_raises(self):
        with pytest.raises(RuntimeError):
            ResourceMeter(1.0).end_window()

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ResourceMeter(0.0)

    def test_cpu_percent_scales_with_budget(self):
        meter_small = ResourceMeter(1.0, iot_cpu_scale=0.01)
        meter_big = ResourceMeter(1.0, iot_cpu_scale=1.0)
        for meter in (meter_small, meter_big):
            meter.start_window()
            _ = sum(i for i in range(50_000))
            meter.end_window()
        assert meter_small.cpu_percent > meter_big.cpu_percent

    def test_finalize_builds_metrics(self):
        meter = ResourceMeter(1.0)
        meter.start_window()
        meter.end_window()
        metrics = meter.finalize(model_size_kb=42.0)
        assert metrics.model_size_kb == 42.0
        assert "42.00 Kb" in str(metrics)

    def test_zero_windows_zero_percent(self):
        meter = ResourceMeter(1.0)
        assert meter.cpu_percent == 0.0
        assert meter.memory_kb == 0.0


class TestDetectionReport:
    def make(self, accuracies, malicious=None):
        report = DetectionReport("m")
        malicious = malicious or [0] * len(accuracies)
        for i, (acc, mal) in enumerate(zip(accuracies, malicious)):
            report.windows.append(
                WindowResult(i, float(i), 10, mal, 0, acc)
            )
        return report

    def test_mean_and_min(self):
        report = self.make([1.0, 0.5, 0.75])
        assert report.mean_accuracy == pytest.approx(0.75)
        assert report.min_accuracy == 0.5

    def test_packet_accuracy_weighted(self):
        report = DetectionReport("m")
        report.windows.append(WindowResult(0, 0.0, 10, 0, 0, 1.0))
        report.windows.append(WindowResult(1, 1.0, 30, 0, 0, 0.5))
        assert report.packet_accuracy == pytest.approx((10 + 15) / 40)

    def test_empty_report(self):
        report = DetectionReport("m")
        assert report.mean_accuracy == 0.0
        assert report.min_accuracy == 0.0
        assert report.packet_accuracy == 0.0

    def test_boundary_windows_flank_transitions(self):
        report = self.make([1.0, 0.4, 1.0, 0.4, 1.0], malicious=[0, 10, 10, 0, 0])
        edges = report.boundary_windows()
        assert [w.window_index for w in edges] == [0, 1, 2, 3]

    def test_accuracy_series(self):
        report = self.make([1.0, 0.5])
        assert report.accuracy_series() == [(0.0, 1.0), (1.0, 0.5)]

    def test_str_mentions_model(self):
        assert "m:" in str(self.make([1.0]))
