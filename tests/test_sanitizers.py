"""Tests for the runtime simulation sanitizers (repro.analysis.sanitizers).

Hand-broken fixtures verify each invariant checker raises the right
``SanitizerError``; a sanitized full experiment proves clean runs stay
clean.
"""

import heapq

import pytest

from repro.analysis import Sanitizer, SanitizerError, sanitize_mode_from_env
from repro.containers.resources import ResourceAccountant, ResourceLimits
from repro.sim import CsmaLan, Simulator
from repro.sim.core import Event
from repro.sim.queue import DropTailQueue
from repro.sim.tcp import TcpState
from repro.testbed import Scenario, run_full_experiment


def sanitized_net():
    sim = Simulator(sanitize=True)
    lan = CsmaLan(sim, data_rate="100Mbps")
    return sim, lan


# ----------------------------------------------------------------------
# Event-time monotonicity


class TestEventMonotonicity:
    def test_hand_broken_past_event_is_caught(self):
        sim = Simulator(sanitize=True)
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        # Bypass schedule()'s own validation: push an event dated before
        # current time straight into the heap, as a kernel bug would.
        rogue = Event(1.0, 0, 10_000, lambda: None)
        heapq.heappush(sim._heap, rogue)
        with pytest.raises(SanitizerError, match="event-monotonicity"):
            sim.run()

    def test_error_carries_context_snapshot(self):
        sanitizer = Sanitizer(fatal=True)
        rogue = Event(1.0, 0, 1, lambda: None)
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.check_event(rogue, now=2.0)
        assert excinfo.value.kind == "event-monotonicity"
        assert excinfo.value.context["event_time"] == 1.0
        assert excinfo.value.context["now"] == 2.0

    def test_clean_kernel_passes(self):
        sim = Simulator(sanitize=True)
        order = []
        sim.schedule(1.0, order.append, "a")
        sim.schedule(1.0, order.append, "b")
        sim.run()
        sim.finalize()
        assert order == ["a", "b"]


class TestEventTotalOrder:
    def test_equal_time_events_never_compare_payload(self):
        """The heap orders by (time, priority, seq) only — callbacks and
        args may be arbitrary uncomparable objects."""
        sim = Simulator()
        order = []
        for i in range(50):
            # object() args are uncomparable; payload comparison would raise.
            sim.schedule(1.0, lambda *args, i=i: order.append(i), object())
        sim.run()
        assert order == list(range(50))

    def test_sort_key_is_strict_total_order(self):
        a = Event(1.0, 0, 0, lambda: None)
        b = Event(1.0, 0, 1, lambda: None)
        assert a < b and not b < a
        assert a.sort_key() == (1.0, 0, 0)
        assert b >= a and a <= b

    def test_priority_still_beats_seq(self):
        timer = Event(1.0, Simulator.PRIORITY_TIMER, 0, lambda: None)
        normal = Event(1.0, Simulator.PRIORITY_NORMAL, 5, lambda: None)
        assert normal < timer


# ----------------------------------------------------------------------
# Packet conservation


class TestQueueConservation:
    def test_queue_that_drops_without_counting_is_caught(self):
        sim = Simulator(sanitize=True)
        queue = DropTailQueue(capacity=4)
        sim.sanitizer.register_queue("txq:test", queue)
        queue.enqueue(object())
        queue.enqueue(object())
        # Hand-broken: discard the backlog without accounting it as
        # flushed — the bug the `flushed` counter exists to prevent.
        queue._items.clear()
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SanitizerError, match="queue-conservation"):
            sim.run()

    def test_properly_flushed_queue_is_conserved(self):
        sim = Simulator(sanitize=True)
        queue = DropTailQueue(capacity=4)
        sim.sanitizer.register_queue("txq:test", queue)
        queue.enqueue(object())
        queue.clear()  # counted as flushed
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert queue.conservation_error() is None

    def test_conservation_error_message(self):
        queue = DropTailQueue(capacity=4)
        queue.enqueue(object())
        queue._items.clear()
        assert "enqueued=1" in queue.conservation_error()


class TestChannelConservation:
    def test_lost_frame_is_caught_at_drain(self):
        sim, lan = sanitized_net()
        a, b = lan.add_host("a"), lan.add_host("b")
        a.udp.bind(1000).send_to(b.address, 53, payload=b"x")
        sim.run(until=0.5)
        # Hand-broken: pretend a delivered frame never happened.
        lan.channel.frames_delivered -= 1
        sim.schedule(0.1, lambda: None)
        with pytest.raises(SanitizerError, match="channel-conservation"):
            sim.run(until=1.0)

    def test_real_traffic_is_conserved(self):
        sim, lan = sanitized_net()
        a, b = lan.add_host("a"), lan.add_host("b")
        received = []
        listener = b.udp.bind(53)
        listener.on_receive = lambda *args: received.append(args)
        a.udp.bind(1000).send_to(b.address, 53, payload=b"x")
        sim.run(until=1.0)
        sim.finalize()
        assert received
        assert lan.channel.frames_in_flight == 0


# ----------------------------------------------------------------------
# Socket / port leaks at teardown


class TestSocketLeaks:
    def test_closed_but_registered_socket_is_caught(self):
        sim, lan = sanitized_net()
        server, client = lan.add_host("s"), lan.add_host("c")
        server.tcp.listen(80, lambda sock: None)
        csock = client.tcp.socket()
        csock.connect(server.address, 80)
        sim.run(until=2.0)
        assert csock.state is TcpState.ESTABLISHED
        # Hand-broken: mark CLOSED without deregistering (a missed
        # _teardown), the definition of a socket leak.
        csock.state = TcpState.CLOSED
        with pytest.raises(SanitizerError, match="socket-leak"):
            sim.finalize()

    def test_orphaned_ephemeral_port_is_caught(self):
        sim, lan = sanitized_net()
        host = lan.add_host("h")
        host.tcp._ports_in_use.add(45000)  # held by no socket or listener
        with pytest.raises(SanitizerError, match="port-leak"):
            sim.finalize()

    def test_clean_connection_lifecycle_passes(self):
        sim, lan = sanitized_net()
        server, client = lan.add_host("s"), lan.add_host("c")
        accepted = []
        server.tcp.listen(80, accepted.append)
        csock = client.tcp.socket()
        csock.connect(server.address, 80)
        sim.run(until=2.0)
        csock.close()
        for sock in accepted:
            sock.close()
        sim.run(until=60.0)  # ride out TIME_WAIT teardown timers
        sim.finalize()


# ----------------------------------------------------------------------
# Resource accounting


class TestResourceAccounting:
    def test_tampered_ledger_is_caught(self):
        sim = Simulator(sanitize=True)
        accountant = ResourceAccountant()
        sim.sanitizer.register_accountant("ids", accountant)
        accountant.allocate("model", 1000)
        accountant.usage.memory_bytes += 64  # hand-broken: ledger drift
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SanitizerError, match="resource-accounting"):
            sim.run()

    def test_consistency_errors_enumerated(self):
        accountant = ResourceAccountant(ResourceLimits(memory_bytes=100))
        accountant.allocate("a", 80)
        assert accountant.consistency_errors() == []
        accountant.usage.peak_memory_bytes = 10  # below current: impossible
        problems = accountant.consistency_errors()
        assert any("peak" in p for p in problems)

    def test_normal_alloc_free_cycle_is_consistent(self):
        sim = Simulator(sanitize=True)
        accountant = ResourceAccountant()
        sim.sanitizer.register_accountant("ids", accountant)
        accountant.allocate("window", 512)
        accountant.free("window")
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.finalize()


# ----------------------------------------------------------------------
# Modes and environment wiring


class TestModes:
    def test_collect_mode_records_instead_of_raising(self):
        sim = Simulator(sanitize="collect")
        queue = DropTailQueue(capacity=4)
        sim.sanitizer.register_queue("txq:test", queue)
        queue.enqueue(object())
        queue._items.clear()
        sim.schedule(1.0, lambda: None)
        sim.run()  # does not raise
        violations = sim.sanitizer.violations
        assert violations and violations[0].kind == "queue-conservation"
        assert "queue-conservation" in sim.sanitizer.report()

    def test_env_variable_enables_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Simulator().sanitizer is not None
        monkeypatch.setenv("REPRO_SANITIZE", "collect")
        sim = Simulator()
        assert sim.sanitizer is not None and not sim.sanitizer.fatal
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert Simulator().sanitizer is None
        monkeypatch.delenv("REPRO_SANITIZE")
        assert Simulator().sanitizer is None

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "maybe")
        with pytest.raises(ValueError, match="REPRO_SANITIZE"):
            sanitize_mode_from_env()

    def test_finalize_is_noop_without_sanitizer_and_idempotent(self):
        sim = Simulator()
        sim.finalize()
        sim.finalize()
        sanitized = Simulator(sanitize=True)
        sanitized.finalize()
        sanitized.finalize()

    def test_explicit_arg_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Simulator(sanitize=False).sanitizer is None


# ----------------------------------------------------------------------
# Full sanitized experiment (acceptance)


class TestSanitizedExperiment:
    def test_full_run_experiment_passes_clean(self, monkeypatch):
        """A sanitized §IV-D smoke run raises no SanitizerError end to end."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        result = run_full_experiment(
            Scenario(n_devices=2, seed=7),
            train_duration=10.0,
            detect_duration=5.0,
        )
        assert len(result.detection) == 3
        assert result.table1()
