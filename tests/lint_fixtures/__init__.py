"""Known-bad snippets for the determinism linter's fixture tests.

Each module contains deliberately hazardous code; tests/test_analysis.py
asserts that each rule fires at exactly the expected file:line.  These
modules are linted as *text*, never imported — do not add them to any
import path.
"""
