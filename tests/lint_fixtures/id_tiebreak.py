"""ID001 fixtures: id()-based tie-breaking."""


def bad_sort_key(events):
    return sorted(events, key=lambda e: (e.time, id(e)))  # line 5: ID001


def bad_compare(a, b) -> bool:
    return id(a) < id(b)  # line 9: ID001


def good_seq_key(events):
    return sorted(events, key=lambda e: (e.time, e.seq))  # ok: stable field


def good_identity_map(obj, registry):
    registry[id(obj)] = obj  # ok: identity map, not ordering
    return registry
