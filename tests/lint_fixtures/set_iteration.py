"""ORD001 fixtures: unordered set iteration / arbitrary set.pop()."""

PENDING = set()


class Picker:
    def __init__(self):
        self.targets: set[int] = set()

    def bad_walk(self):
        for target in self.targets:  # line 11: ORD001 (inferred set attr)
            yield target

    def bad_pop(self):
        return self.targets.pop()  # line 15: ORD001 (arbitrary element)

    def good_walk(self):
        for target in sorted(self.targets):  # ok: sorted iteration
            yield target


def bad_literal():
    return [x for x in {3, 1, 2}]  # line 23: ORD001 (set literal)


def bad_call(items):
    for item in set(items):  # line 27: ORD001 (set(...) call)
        print(item)


def bad_module_state():
    for item in PENDING:  # line 32: ORD001 (module-level set)
        print(item)
