"""MUT001 fixtures: mutable default arguments."""


def bad_list(items=[]):  # line 4: MUT001
    return items


def bad_dict_call(state=dict(), *, tags=set()):  # line 8: MUT001 (twice)
    return state, tags


def good_none(items=None):
    return list(items or ())
