"""BAT001/BAT002/BAT004 fixtures: batch twins that drift from the scalar path.

``DriftingCounter.receive_batch`` silently drops the ``self.dropped``
counter update its scalar twin performs — the canonical dual-path bug
the parity checker exists to catch.  Linted as text, never imported.
"""


class DriftingCounter:
    """Scalar/batch twins whose effect sets diverge."""

    def __init__(self) -> None:
        self.received = 0
        self.dropped = 0

    def receive(self, packet) -> None:
        self.received += 1
        if packet.payload_len == 0:
            self.dropped += 1  # the batch twin forgets this counter

    def receive_batch(self, batch, times) -> None:  # line 21: BAT001
        self.received += len(batch)  # missing: self.dropped update


class LoopingObserver:
    """Batch twin that just loops the scalar twin (BAT002).

    No BAT004 here: an empty train makes the loop vacuous, so the
    missing guard is harmless and the rule correctly stays quiet.
    """

    def __init__(self) -> None:
        self.seen = 0

    def observe(self, packet) -> None:
        self.seen += 1

    def observe_batch(self, batch, times) -> None:
        for i in range(len(batch)):
            self.observe(batch.packet(i))  # line 40: BAT002


class FaithfulQueue:
    """Control: twins agree, batch guarded — no findings."""

    def __init__(self) -> None:
        self.enqueued = 0

    def enqueue(self, packet) -> bool:
        self.enqueued += 1
        return True

    def enqueue_batch(self, batch, times) -> int:
        if len(batch) == 0:
            return 0
        self.enqueued += len(batch)
        return len(batch)
