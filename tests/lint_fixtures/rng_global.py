"""RNG001 fixtures: hidden-global-state random calls."""

import random
from random import choice, shuffle as mix

SEEDED = random.Random(42)  # ok: seeded instance construction


def bad_jitter() -> float:
    return random.uniform(0.0, 1.0)  # line 10: RNG001


def bad_pick(items):
    random.seed(7)  # line 14: RNG001 (reseeding the global is still global)
    first = choice(items)  # line 15: RNG001 via from-import
    mix(items)  # line 16: RNG001 via aliased from-import
    return first


def good_jitter() -> float:
    return SEEDED.uniform(0.0, 1.0)  # ok: instance method, not flagged
