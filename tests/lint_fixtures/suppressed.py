"""Suppression fixtures: lint-ok comments silence specific rules."""

import random
import time


def justified_wall_clock() -> float:
    return time.time()  # repro: lint-ok[TIME001] -- host-side progress logging


def justified_rng() -> float:
    return random.random()  # repro: lint-ok[RNG001] -- fixture demonstrating suppression


def blanket() -> float:
    return time.time() + random.random()  # repro: lint-ok[*] -- suppress everything here


def not_suppressed() -> float:
    return time.time()  # line 20: TIME001 (no lint-ok comment)
