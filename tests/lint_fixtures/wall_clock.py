"""TIME001 fixtures: wall-clock reads in simulation code."""

import time
from datetime import datetime
from time import perf_counter


def bad_stamp() -> float:
    return time.time()  # line 9: TIME001


def bad_tick() -> float:
    return perf_counter()  # line 13: TIME001 via from-import


def bad_date() -> str:
    return datetime.now().isoformat()  # line 17: TIME001


def good_virtual(sim) -> float:
    return sim.now  # ok: virtual time
