"""RNG002 fixtures: numpy legacy global RandomState calls."""

import numpy as np

GOOD_RNG = np.random.default_rng(0)  # ok: seeded Generator


def bad_noise(n: int):
    np.random.seed(0)  # line 9: RNG002
    return np.random.rand(n)  # line 10: RNG002


def bad_shuffle(x):
    np.random.shuffle(x)  # line 14: RNG002


def good_noise(n: int):
    return GOOD_RNG.normal(size=n)  # ok: Generator method
