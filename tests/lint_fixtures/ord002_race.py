"""ORD002 fixture: same-bucket handlers whose writes do not commute.

``Racer._fire`` and ``Racer._refire`` are both scheduled callbacks; each
order-sensitively assigns ``self.last_winner``, which the other also
touches, so equal-``(time, priority)`` bucket mates produce
order-dependent state.  Linted as text, never imported.
"""


class Racer:
    def __init__(self, sim) -> None:
        self.sim = sim
        self.last_winner = ""
        self.total = 0

    def start(self) -> None:
        self.sim.schedule(0.0, self._fire)
        self.sim.schedule(0.0, self._refire)

    def _fire(self) -> None:  # line 20: ORD002
        self.last_winner = "fire"  # plain assign: order-sensitive
        self.total += 1  # counter: commutative, not flagged alone

    def _refire(self) -> None:  # line 24: ORD002
        self.last_winner = "refire"


class Commuter:
    """Control: counter-only handler shares nothing order-sensitive."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.count = 0

    def start(self) -> None:
        self.sim.schedule(0.0, self._bump)

    def _bump(self) -> None:  # ok: += commutes
        self.count += 1
