"""FLT001 fixtures: float equality against simulation time."""


def bad_boundary(record, window_end: float) -> bool:
    return record.timestamp == window_end  # line 5: FLT001


def bad_now(sim, deadline: float) -> bool:
    return sim.now != deadline  # line 9: FLT001


def good_index(record, window_seconds: float) -> bool:
    return int(record.timestamp // window_seconds) == 3  # ok: int compare


def good_inequality(sim, deadline: float) -> bool:
    return sim.now >= deadline  # ok: ordering, not equality


def good_none(timestamp) -> bool:
    return timestamp == None  # ok: sentinel check, not float equality  # noqa: E711
