"""PARSE001 fixture: a file the linter cannot parse.

The dangling ``def`` below is a deliberate syntax error; lint_paths must
report it as an error finding instead of silently skipping the file.
Linted as text, never imported (and never importable).
"""


def broken(:
