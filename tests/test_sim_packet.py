"""Tests for packet and header wire-format serialization."""

from hypothesis import given, strategies as st

from repro.sim.address import Ipv4Address, MacAddress
from repro.sim.packet import (
    ETHERNET_HEADER_LEN,
    IPV4_HEADER_LEN,
    PROTO_TCP,
    PROTO_UDP,
    TCP_HEADER_LEN,
    UDP_HEADER_LEN,
    EthernetHeader,
    Ipv4Header,
    Packet,
    Provenance,
    TcpFlags,
    TcpHeader,
    UdpHeader,
    _ipv4_checksum,
)

MAC_A = MacAddress.parse("02:00:00:00:00:01")
MAC_B = MacAddress.parse("02:00:00:00:00:02")
IP_A = Ipv4Address.parse("10.0.0.1")
IP_B = Ipv4Address.parse("10.0.0.2")


def make_tcp_packet(payload=b"hi", flags=TcpFlags.ACK):
    return Packet(
        eth=EthernetHeader(src=MAC_A, dst=MAC_B),
        ip=Ipv4Header(src=IP_A, dst=IP_B, protocol=PROTO_TCP),
        tcp=TcpHeader(src_port=1234, dst_port=80, seq=42, ack=7, flags=flags),
        payload=payload,
    )


class TestHeaderSizes:
    def test_tcp_packet_size_sums_headers(self):
        packet = make_tcp_packet(payload=b"x" * 10)
        expected = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN + 10
        assert packet.size == expected

    def test_udp_packet_size(self):
        packet = Packet(
            ip=Ipv4Header(src=IP_A, dst=IP_B, protocol=PROTO_UDP),
            udp=UdpHeader(src_port=1, dst_port=2),
            payload=b"abc",
        )
        assert packet.size == IPV4_HEADER_LEN + UDP_HEADER_LEN + 3

    def test_virtual_payload_length(self):
        packet = Packet(
            ip=Ipv4Header(src=IP_A, dst=IP_B, protocol=PROTO_TCP),
            tcp=TcpHeader(src_port=1, dst_port=2),
            payload_len=1400,
        )
        assert packet.data_len == 1400
        assert packet.size == IPV4_HEADER_LEN + TCP_HEADER_LEN + 1400


class TestWireFormat:
    def test_ethernet_roundtrip(self):
        header = EthernetHeader(src=MAC_A, dst=MAC_B)
        assert EthernetHeader.from_bytes(header.to_bytes()) == header

    def test_ipv4_roundtrip(self):
        header = Ipv4Header(src=IP_A, dst=IP_B, protocol=PROTO_TCP, ttl=33, identification=99)
        parsed = Ipv4Header.from_bytes(header.to_bytes(payload_len=100))
        assert parsed.src == IP_A
        assert parsed.dst == IP_B
        assert parsed.protocol == PROTO_TCP
        assert parsed.ttl == 33
        assert parsed.identification == 99
        assert parsed.total_length == IPV4_HEADER_LEN + 100

    def test_ipv4_checksum_validates(self):
        header = Ipv4Header(src=IP_A, dst=IP_B, protocol=PROTO_TCP).to_bytes()
        # Recomputing the checksum over a valid header yields zero.
        assert _ipv4_checksum(header) == 0

    def test_tcp_roundtrip(self):
        header = TcpHeader(
            src_port=5000, dst_port=80, seq=2**31 + 5, ack=77,
            flags=TcpFlags.SYN | TcpFlags.ACK,
        )
        assert TcpHeader.from_bytes(header.to_bytes()) == header

    def test_udp_roundtrip(self):
        header = UdpHeader(src_port=53, dst_port=5353, length=20)
        assert UdpHeader.from_bytes(header.to_bytes()) == header

    def test_full_tcp_packet_roundtrip(self):
        packet = make_tcp_packet(payload=b"hello world")
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.eth == packet.eth
        assert parsed.tcp == packet.tcp
        assert parsed.payload == b"hello world"
        assert parsed.ip.src == IP_A

    def test_virtual_payload_padded_on_wire(self):
        packet = Packet(
            eth=EthernetHeader(src=MAC_A, dst=MAC_B),
            ip=Ipv4Header(src=IP_A, dst=IP_B, protocol=PROTO_UDP),
            udp=UdpHeader(src_port=1, dst_port=2),
            payload=b"ab",
            payload_len=10,
        )
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.payload == b"ab" + b"\x00" * 8

    @given(
        sport=st.integers(0, 65535),
        dport=st.integers(0, 65535),
        seq=st.integers(0, 2**32 - 1),
        ack=st.integers(0, 2**32 - 1),
        flags=st.integers(0, 63),
    )
    def test_property_tcp_header_roundtrip(self, sport, dport, seq, ack, flags):
        header = TcpHeader(sport, dport, seq, ack, TcpFlags(flags))
        assert TcpHeader.from_bytes(header.to_bytes()) == header

    @given(payload=st.binary(max_size=200))
    def test_property_packet_payload_roundtrip(self, payload):
        packet = make_tcp_packet(payload=payload)
        assert Packet.from_bytes(packet.to_bytes()).payload == payload


class TestProvenance:
    def test_default_is_benign(self):
        assert make_tcp_packet().provenance.malicious is False

    def test_provenance_not_on_wire(self):
        tainted = Packet(
            eth=EthernetHeader(src=MAC_A, dst=MAC_B),
            ip=Ipv4Header(src=IP_A, dst=IP_B, protocol=PROTO_TCP),
            tcp=TcpHeader(src_port=1, dst_port=2),
            provenance=Provenance(origin="bot", malicious=True, attack="syn"),
        )
        clean = Packet.from_bytes(tainted.to_bytes())
        assert clean.provenance.malicious is False

    def test_with_eth_preserves_provenance(self):
        tainted = make_tcp_packet()
        tainted = Packet(
            ip=tainted.ip, tcp=tainted.tcp,
            provenance=Provenance("bot", True, "udp"),
        )
        framed = tainted.with_eth(EthernetHeader(src=MAC_A, dst=MAC_B))
        assert framed.provenance.attack == "udp"
