"""Tests for SVM, Isolation Forest, serialization, and federated learning."""

import numpy as np
import pytest

from repro.ml import (
    CnnClassifier,
    IsolationForestDetector,
    LinearSVM,
    RandomForestClassifier,
    accuracy_score,
    load_model,
    model_size_kb,
    save_model,
)
from repro.ml.federated import FederatedClient, FederatedCoordinator, fedavg, shard_by_client
from repro.ml.isolation_forest import _average_path_length
from repro.ml.preprocessing import NotFittedError


def linear_data(n=400, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, d))
    w = rng.normal(0, 1, d)
    y = (X @ w > 0).astype(int)
    return X, y


class TestLinearSVM:
    def test_learns_linear_boundary(self):
        X, y = linear_data()
        svm = LinearSVM(epochs=20, random_state=0).fit(X, y)
        assert accuracy_score(y, svm.predict(X)) > 0.95

    def test_decision_function_sign_matches_predict(self):
        X, y = linear_data(seed=1)
        svm = LinearSVM(epochs=5).fit(X, y)
        scores = svm.decision_function(X)
        np.testing.assert_array_equal(svm.predict(X), (scores >= 0).astype(int))

    def test_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearSVM().predict(np.zeros((2, 2)))

    def test_weight_roundtrip(self):
        X, y = linear_data(seed=2)
        svm = LinearSVM(epochs=3).fit(X, y)
        weights = svm.get_weights()
        predictions = svm.predict(X)
        other = LinearSVM()
        other.set_weights(weights)
        np.testing.assert_array_equal(other.predict(X), predictions)


class TestIsolationForest:
    def test_average_path_length_known_values(self):
        assert _average_path_length(1) == 0.0
        assert _average_path_length(2) == 1.0
        assert _average_path_length(256) == pytest.approx(10.24, abs=0.3)

    def test_outliers_score_higher(self):
        rng = np.random.default_rng(0)
        inliers = rng.normal(0, 1, (400, 4))
        outliers = rng.normal(10, 0.5, (20, 4))
        forest = IsolationForestDetector(random_state=0).fit(inliers)
        assert forest.score_samples(outliers).mean() > forest.score_samples(inliers).mean()

    def test_supervised_threshold_calibration(self):
        rng = np.random.default_rng(1)
        benign = rng.normal(0, 1, (300, 4))
        attack = rng.normal(8, 1, (300, 4))
        X = np.vstack([benign, attack])
        y = np.array([0] * 300 + [1] * 300)
        forest = IsolationForestDetector(random_state=0).fit(X, y)
        assert accuracy_score(y, forest.predict(X)) > 0.9

    def test_contamination_controls_flag_rate(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 1, (500, 3))
        forest = IsolationForestDetector(contamination=0.1, random_state=0).fit(X)
        assert forest.predict(X).mean() == pytest.approx(0.1, abs=0.05)

    def test_invalid_contamination(self):
        with pytest.raises(ValueError):
            IsolationForestDetector(contamination=0.0)

    def test_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            IsolationForestDetector().predict(np.zeros((2, 2)))


class TestSerialization:
    def test_roundtrip_preserves_predictions(self, tmp_path):
        X, y = linear_data(seed=3)
        model = RandomForestClassifier(n_estimators=5, max_depth=4).fit(X, y)
        path = tmp_path / "model.pkl"
        nbytes = save_model(model, path)
        assert nbytes == path.stat().st_size
        loaded = load_model(path)
        np.testing.assert_array_equal(loaded.predict(X), model.predict(X))

    def test_cnn_roundtrip(self, tmp_path):
        X, y = linear_data(n=100, d=12, seed=4)
        cnn = CnnClassifier(n_features=12, epochs=1, random_state=0).fit(X, y)
        path = tmp_path / "cnn.pkl"
        save_model(cnn, path)
        loaded = load_model(path)
        np.testing.assert_allclose(loaded.predict_proba(X), cnn.predict_proba(X))

    def test_model_size_excludes_caches(self):
        X, y = linear_data(n=2000, d=12, seed=5)
        cnn = CnnClassifier(n_features=12, epochs=1, random_state=0).fit(X, y)
        cnn.predict(X)  # populate forward caches
        weights_kb = sum(p.size for p in cnn.net.params()) * 8 / 1000
        assert model_size_kb(cnn) < weights_kb * 1.5

    def test_kmeans_much_smaller_than_forest(self):
        """Table II's headline ordering: K-Means is the lightest model."""
        from repro.ml import KMeansDetector

        X, y = linear_data(n=800, d=10, seed=6)
        forest = RandomForestClassifier(n_estimators=20, max_depth=10).fit(X, y)
        kmeans = KMeansDetector(auto_k=True, random_state=0).fit(X, y)
        assert model_size_kb(kmeans) < model_size_kb(forest) / 5


class TestFedAvg:
    def test_average_of_identical_is_identity(self):
        weights = [np.ones((2, 2)), np.zeros(3)]
        result = fedavg([weights, weights, weights])
        np.testing.assert_allclose(result[0], weights[0])
        np.testing.assert_allclose(result[1], weights[1])

    def test_unweighted_mean(self):
        a = [np.array([0.0])]
        b = [np.array([2.0])]
        np.testing.assert_allclose(fedavg([a, b])[0], [1.0])

    def test_sample_weighted_mean(self):
        a = [np.array([0.0])]
        b = [np.array([2.0])]
        np.testing.assert_allclose(fedavg([a, b], [3, 1])[0], [0.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fedavg([])

    def test_misaligned_counts_rejected(self):
        with pytest.raises(ValueError):
            fedavg([[np.zeros(1)]], [1, 2])

    def test_shard_by_client(self):
        X = np.arange(6).reshape(6, 1)
        y = np.array([0, 0, 1, 1, 0, 1])
        ids = np.array([1, 2, 1, 2, 1, 2])
        shards = shard_by_client(X, y, ids)
        assert set(shards) == {1, 2}
        np.testing.assert_array_equal(shards[1][0].ravel(), [0, 2, 4])

    def test_federated_svm_converges(self):
        """FedAvg over three SVM clients approaches centralized accuracy."""
        X, y = linear_data(n=600, d=5, seed=7)
        shards = [(X[i::3], y[i::3]) for i in range(3)]

        def train(model, Xs, ys):
            model.fit(Xs, ys)

        base = LinearSVM(epochs=3, random_state=0).fit(X[:10], y[:10])
        clients = [
            FederatedClient(f"dev{i}", LinearSVM(epochs=3, random_state=i), Xs, ys, train)
            for i, (Xs, ys) in enumerate(shards)
        ]
        coordinator = FederatedCoordinator(clients, base.get_weights())

        def evaluate(weights):
            probe = LinearSVM()
            probe.set_weights(weights)
            return accuracy_score(y, probe.predict(X))

        coordinator.run(rounds=5, evaluate=evaluate)
        assert coordinator.rounds_completed == 5
        assert coordinator.round_history[-1] > 0.9
