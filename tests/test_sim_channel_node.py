"""Tests for CSMA channel arbitration, delivery, and node routing."""

import pytest

from repro.sim import CsmaLan, PacketProbe, Simulator
from repro.sim.address import Ipv4Address
from repro.sim.node import NetworkError
from repro.sim.packet import PROTO_UDP


@pytest.fixture()
def lan():
    sim = Simulator()
    return sim, CsmaLan(sim, data_rate="10Mbps", delay="10us")


def test_udp_datagram_delivered(lan):
    sim, net = lan
    a = net.add_host("a")
    b = net.add_host("b")
    inbox = []
    sock_b = b.udp.bind(5000)
    sock_b.on_receive = lambda s, p, n, src, sport: inbox.append((p, src, sport))
    sock_a = a.udp.bind(6000)
    sock_a.send_to(b.address, 5000, b"hello")
    sim.run(until=1.0)
    assert inbox == [(b"hello", a.address, 6000)]


def test_transmission_delay_matches_rate(lan):
    sim, net = lan
    a = net.add_host("a")
    b = net.add_host("b")
    arrival = []
    sock_b = b.udp.bind(5000)
    sock_b.on_receive = lambda *args: arrival.append(sim.now)
    sock_a = a.udp.bind(0)
    sock_a.send_to(b.address, 5000, length=1000)
    sim.run(until=1.0)
    # 1000B payload + 8 UDP + 20 IP + 14 Eth = 1042B at 10 Mbps, + 10us prop.
    expected = 1042 * 8 / 10e6 + 10e-6
    assert arrival[0] == pytest.approx(expected, rel=1e-9)


def test_channel_serializes_concurrent_senders(lan):
    sim, net = lan
    a, b, c = net.add_host("a"), net.add_host("b"), net.add_host("c")
    arrivals = []
    sock = c.udp.bind(7000)
    sock.on_receive = lambda *args: arrivals.append(sim.now)
    a.udp.bind(0).send_to(c.address, 7000, length=1000)
    b.udp.bind(0).send_to(c.address, 7000, length=1000)
    sim.run(until=1.0)
    assert len(arrivals) == 2
    # Second frame cannot start until the first finishes serializing.
    assert arrivals[1] - arrivals[0] >= 1042 * 8 / 10e6 - 1e-12


def test_probe_sees_every_frame_once(lan):
    sim, net = lan
    a = net.add_host("a")
    b = net.add_host("b")
    probe = net.add_probe(PacketProbe())
    b.udp.bind(5000)
    sock = a.udp.bind(0)
    for _ in range(5):
        sock.send_to(b.address, 5000, b"x")
    sim.run(until=1.0)
    assert probe.count == 5


def test_queue_overflow_drops_frames():
    sim = Simulator()
    net = CsmaLan(sim, data_rate="1Mbps")
    a = net.add_host("a", queue_capacity=4)
    b = net.add_host("b")
    b.udp.bind(5000)
    received = []
    b.udp.sockets[5000].on_receive = lambda *args: received.append(1)
    sock = a.udp.bind(0)
    sent_ok = sum(1 for _ in range(50) if sock.send_to(b.address, 5000, length=1000))
    sim.run(until=5.0)
    device = a.interfaces[0].device
    assert device.queue.dropped > 0
    assert sent_ok < 50
    assert len(received) == sent_ok


def test_unroutable_destination_counted(lan):
    sim, net = lan
    a = net.add_host("a")
    sock = a.udp.bind(0)
    assert not sock.send_to(Ipv4Address.parse("192.168.99.1"), 1, b"x")
    assert a.packets_unroutable == 1


def test_send_to_dead_address_still_occupies_wire(lan):
    """Scans of unused addresses must be observable by the IDS tap."""
    sim, net = lan
    a = net.add_host("a")
    probe = net.add_probe(PacketProbe())
    sock = a.udp.bind(0)
    dead = Ipv4Address.parse("10.0.0.200")  # in-subnet, unassigned
    sock.send_to(dead, 23, b"probe")
    sim.run(until=1.0)
    assert probe.count == 1
    assert probe.records[0].dst_ip == dead.value


def test_node_without_interfaces_raises():
    sim = Simulator()
    from repro.sim.node import Node

    with pytest.raises(NetworkError):
        Node(sim, "bare").address


def test_remove_host_stops_delivery(lan):
    sim, net = lan
    a = net.add_host("a")
    b = net.add_host("b")
    inbox = []
    sock_b = b.udp.bind(5000)
    sock_b.on_receive = lambda *args: inbox.append(1)
    net.remove_host(b)
    a.udp.bind(0).send_to(b.address, 5000, b"x")
    sim.run(until=1.0)
    assert inbox == []


def test_broadcast_reaches_all_other_hosts(lan):
    sim, net = lan
    a = net.add_host("a")
    listeners = []
    for i in range(3):
        h = net.add_host(f"h{i}")
        sock = h.udp.bind(9000)
        sock.on_receive = lambda s, p, n, src, sp, i=i: listeners.append(i)
    a.udp.bind(0).send_to(net.network.broadcast, 9000, b"hello-all")
    sim.run(until=1.0)
    assert sorted(listeners) == [0, 1, 2]


def test_record_fields_match_packet(lan):
    sim, net = lan
    a = net.add_host("a")
    b = net.add_host("b")
    probe = net.add_probe(PacketProbe())
    b.udp.bind(5353)
    a.udp.bind(1111).send_to(b.address, 5353, b"dns?")
    sim.run(until=1.0)
    record = probe.records[0]
    assert record.protocol == PROTO_UDP
    assert record.src_port == 1111
    assert record.dst_port == 5353
    assert record.src_ip == a.address.value
    assert record.dst_ip == b.address.value
    assert record.label == 0
