"""Cross-mode equivalence and per-mode determinism of the benign batch plane.

The full experiment pipeline can run with floods and/or benign device
traffic batched (``Scenario.batch_floods`` / ``Scenario.batch_benign``).
These tests pin the honest equivalence contract between the four modes:

* every mode is **deterministic**: the same scenario + seed reproduces a
  bit-identical :meth:`ExperimentResult.fingerprint`, and bucket-shuffle
  seeds (``REPRO_SHUFFLE``) never change it;
* the **malicious composition** (attack packet counts, per-attack
  breakdown) is identical across all four modes — batching never adds,
  drops, or relabels an attack packet;
* toggling ``batch_floods`` alone preserves the *entire* dataset
  composition bit-for-bit — flood trains are open-loop, so there is no
  feedback path for batching to perturb;
* toggling ``batch_benign`` preserves benign volume to within a small
  tolerance.  Benign TCP is a feedback loop: trains hold the medium so
  ACKs ride behind the data instead of interleaving, which nudges frame
  timestamps and lets a handful of frames near a capture-window boundary
  hop windows.  Cross-mode *fingerprint* identity is therefore not the
  contract (see tests/test_tcp_batch_transfers.py for the wire-level
  statement of what is).
"""

import dataclasses
import os

import pytest

from repro.testbed import Scenario, Testbed, attach_victim_monitor
from repro.testbed.experiment import run_full_experiment

_BASE = Scenario(n_devices=3, seed=11)
_MODES = {
    "scalar": (False, False),
    "batch-floods": (True, False),
    "batch-benign": (False, True),
    "full-batch": (True, True),
}


def _run(batch_floods, batch_benign, shuffle=None):
    saved = os.environ.pop("REPRO_SHUFFLE", None)
    if shuffle is not None:
        os.environ["REPRO_SHUFFLE"] = str(shuffle)
    try:
        scenario = dataclasses.replace(
            _BASE, batch_floods=batch_floods, batch_benign=batch_benign
        )
        return run_full_experiment(
            scenario, train_duration=20.0, detect_duration=10.0
        )
    finally:
        os.environ.pop("REPRO_SHUFFLE", None)
        if saved is not None:
            os.environ["REPRO_SHUFFLE"] = saved


def _composition(summary):
    return (summary.total, summary.malicious, summary.benign, dict(summary.by_attack))


def _malicious_only(summary):
    return (summary.malicious, dict(summary.by_attack))


@pytest.fixture(scope="module")
def grid():
    """One full experiment per batching mode, same scenario and seed."""
    return {name: _run(*flags) for name, flags in _MODES.items()}


class TestPerModeDeterminism:
    def test_full_batch_fingerprint_reproducible(self, grid):
        again = _run(*_MODES["full-batch"])
        assert again.fingerprint() == grid["full-batch"].fingerprint()
        assert again.table1() == grid["full-batch"].table1()

    def test_scalar_fingerprint_reproducible(self, grid):
        again = _run(*_MODES["scalar"])
        assert again.fingerprint() == grid["scalar"].fingerprint()
        assert again.table1() == grid["scalar"].table1()

    def test_shuffle_seeds_keep_full_batch_fingerprint(self, grid):
        baseline = grid["full-batch"].fingerprint()
        for seed in (1, 2):
            assert _run(*_MODES["full-batch"], shuffle=seed).fingerprint() == baseline

    def test_modes_are_distinct_runs(self, grid):
        # Sanity: the fixture really covers four different configurations
        # that each produced a detectable workload.
        for name, result in grid.items():
            assert result.train_summary.malicious > 0, name
            assert result.detect_summary.malicious > 0, name
            assert len(result.table1()) >= 3, name


class TestCrossModeInvariants:
    def test_malicious_composition_identical_across_modes(self, grid):
        baseline = grid["scalar"]
        for name, result in grid.items():
            assert _malicious_only(result.train_summary) == _malicious_only(
                baseline.train_summary
            ), name
            assert _malicious_only(result.detect_summary) == _malicious_only(
                baseline.detect_summary
            ), name

    def test_batch_floods_toggle_preserves_dataset_composition(self, grid):
        for scalar_benign, batched in (
            ("scalar", "batch-floods"),
            ("batch-benign", "full-batch"),
        ):
            a, b = grid[scalar_benign], grid[batched]
            assert _composition(a.train_summary) == _composition(b.train_summary)
            assert _composition(a.detect_summary) == _composition(b.detect_summary)

    def test_benign_volume_stable_across_benign_batching(self, grid):
        for scalar_mode, batched in (
            ("scalar", "batch-benign"),
            ("batch-floods", "full-batch"),
        ):
            for phase in ("train_summary", "detect_summary"):
                a = getattr(grid[scalar_mode], phase).benign
                b = getattr(grid[batched], phase).benign
                assert a > 0 and b > 0
                assert abs(a - b) / a < 0.01, (scalar_mode, batched, phase, a, b)

    def test_all_modes_report_same_models(self, grid):
        names = {tuple(model for model, _ in r.table1()) for r in grid.values()}
        assert len(names) == 1


class TestVictimAccountingParity:
    """Batched deliveries hit the victim's books once per packet.

    A :class:`~repro.testbed.impact.VictimMonitor` watches the TServer
    while benign sessions run and a UDP flood lands.  The regression
    being pinned: a train arriving at the victim must count ``len(train)``
    packets and ``sum(sizes)`` bytes — not one packet per train and not
    one packet per train twice — so every accounting total the defense
    benchmarks consume is identical between scalar and batched runs.
    """

    def _run(self, batch):
        scenario = Scenario(
            n_devices=3, seed=41, batch_floods=batch, batch_benign=batch
        )
        built = Testbed(scenario).build()
        built.infect_all()
        monitor = attach_victim_monitor(built.tserver)
        base_rx = built.tserver.node.packets_received
        start = built.sim.now
        built.sim.run(until=start + 4.0)  # benign warm-up + bot registration
        built.cnc.launch_attack(
            "udp", built.tserver.node.address, 80, duration=3.0, pps=100
        )
        built.sim.run(until=start + 12.0)
        monitor.stop()
        interval = monitor.interval
        samples = monitor.series.samples
        return {
            "rx_packets": round(sum(s.rx_packets * interval for s in samples)),
            "rx_bytes": round(sum(s.rx_bytes * interval for s in samples)),
            "goodput": round(sum(s.goodput_bytes * interval for s in samples)),
            "accepted": samples[-1].accepted,
            "udp_unreachable": samples[-1].udp_unreachable,
            "rx_delta": built.tserver.node.packets_received - base_rx,
            "tap_bytes": round(monitor._rx_bytes_total),
        }

    @pytest.fixture(scope="class")
    def runs(self):
        return {"scalar": self._run(False), "batch": self._run(True)}

    def test_monitor_reconciles_with_node_counters(self, runs):
        # If a train were counted once (or twice) instead of per packet,
        # the per-sample rates would no longer integrate back to the
        # node's cumulative counters.
        for mode, totals in runs.items():
            assert totals["rx_packets"] == totals["rx_delta"], mode
            assert totals["rx_bytes"] == totals["tap_bytes"], mode

    def test_goodput_identical_scalar_vs_batch(self, runs):
        assert runs["scalar"]["goodput"] == runs["batch"]["goodput"]
        assert runs["scalar"]["goodput"] > 0
        assert runs["scalar"]["accepted"] == runs["batch"]["accepted"]

    def test_flood_accounting_identical_scalar_vs_batch(self, runs):
        # Open-loop flood: every mode must see the same unanswerable
        # datagram count — 3 bots x 100 pps x 3 s.
        assert runs["scalar"]["udp_unreachable"] == 900
        assert runs["batch"]["udp_unreachable"] == 900

    def test_rx_volume_stable_scalar_vs_batch(self, runs):
        # Frame totals at a fixed time cutoff may differ by the handful
        # of benign frames in flight (trains shift timestamps), but the
        # volume must agree to well under a percent.
        a, b = runs["scalar"]["rx_packets"], runs["batch"]["rx_packets"]
        assert abs(a - b) / a < 0.01, (a, b)
