"""Tests for the container runtime: lifecycle, resources, bridges, compose."""

import pytest
from hypothesis import given, strategies as st

from repro.containers import (
    Container,
    ContainerState,
    Image,
    Orchestrator,
    Process,
    ResourceAccountant,
    ResourceLimits,
    ServiceSpec,
)
from repro.containers.container import ContainerError
from repro.containers.image import Registry
from repro.containers.resources import ResourceLimitExceeded
from repro.sim import CsmaLan, Simulator
from repro.sim.node import Node


class EchoProcess(Process):
    """Test process: listens on a UDP port and echoes datagrams back."""

    name = "echo"

    def __init__(self, port=7):
        super().__init__()
        self.port = port
        self.echoed = 0

    def on_start(self):
        sock = self.node.udp.bind(self.port)
        sock.on_receive = self._echo

    def _echo(self, sock, payload, length, src, sport):
        self.echoed += 1
        sock.send_to(src, sport, payload)


@pytest.fixture()
def env():
    sim = Simulator()
    lan = CsmaLan(sim)
    return sim, lan, Orchestrator(sim, lan)


class TestResourceAccounting:
    def test_cpu_charge_accumulates(self):
        acct = ResourceAccountant()
        acct.charge_cpu(0.2)
        acct.charge_cpu(0.3)
        assert acct.usage.cpu_seconds == pytest.approx(0.5)

    def test_cpu_share_scales_wall_time(self):
        acct = ResourceAccountant(ResourceLimits(cpu_share=0.5))
        assert acct.charge_cpu(1.0) == pytest.approx(2.0)

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            ResourceAccountant().charge_cpu(-1)

    def test_memory_allocation_and_free(self):
        acct = ResourceAccountant()
        acct.allocate("model", 1000)
        acct.allocate("buffer", 500)
        assert acct.usage.memory_bytes == 1500
        acct.free("model")
        assert acct.usage.memory_bytes == 500
        assert acct.usage.peak_memory_bytes == 1500

    def test_reallocation_replaces_tag(self):
        acct = ResourceAccountant()
        acct.allocate("buf", 1000)
        acct.allocate("buf", 200)
        assert acct.usage.memory_bytes == 200

    def test_memory_limit_enforced(self):
        acct = ResourceAccountant(ResourceLimits(memory_bytes=1024))
        acct.allocate("a", 1000)
        with pytest.raises(ResourceLimitExceeded):
            acct.allocate("b", 100)

    def test_cpu_percent(self):
        acct = ResourceAccountant()
        acct.charge_cpu(0.65)
        assert acct.cpu_percent(over_seconds=1.0) == pytest.approx(65.0)

    def test_cpu_percent_zero_window(self):
        assert ResourceAccountant().cpu_percent(0.0) == 0.0

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            ResourceLimits(cpu_share=0)
        with pytest.raises(ValueError):
            ResourceLimits(memory_bytes=-5)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=30))
    def test_property_memory_never_negative(self, sizes):
        acct = ResourceAccountant()
        for i, nbytes in enumerate(sizes):
            acct.allocate(f"tag{i % 3}", nbytes)
            assert acct.usage.memory_bytes >= 0
            assert acct.usage.peak_memory_bytes >= acct.usage.memory_bytes


class TestImage:
    def test_reference(self):
        assert Image("ddoshield/dev", "1.0").reference == "ddoshield/dev:1.0"

    def test_with_entrypoint_is_derivation(self):
        base = Image("base")
        derived = base.with_entrypoint(lambda c: EchoProcess())
        assert base.entrypoints == ()
        assert len(derived.entrypoints) == 1

    def test_registry_push_pull(self):
        registry = Registry()
        image = Image("dev", "2.0")
        registry.push(image)
        assert registry.pull("dev:2.0") is image
        assert "dev:2.0" in registry

    def test_registry_default_tag(self):
        registry = Registry()
        image = Image("dev")
        registry.push(image)
        assert registry.pull("dev") is image
        assert "dev" in registry

    def test_registry_missing_image(self):
        with pytest.raises(KeyError):
            Registry().pull("ghost:latest")


class TestContainerLifecycle:
    def make(self, env, image=None):
        sim, lan, _ = env
        node = Node(sim, "n")
        from repro.sim.node import connect_to_lan

        connect_to_lan(node, lan.channel, lan.network, lan.macs.allocate())
        return Container("c1", image or Image("img"), sim, node)

    def test_initial_state_created(self, env):
        assert self.make(env).state is ContainerState.CREATED

    def test_start_runs_entrypoints(self, env):
        image = Image("img").with_entrypoint(lambda c: EchoProcess())
        container = self.make(env, image)
        container.start()
        assert container.state is ContainerState.RUNNING
        assert container.find_process("echo") is not None

    def test_double_start_rejected(self, env):
        container = self.make(env)
        container.start()
        with pytest.raises(ContainerError):
            container.start()

    def test_exec_requires_running(self, env):
        container = self.make(env)
        with pytest.raises(ContainerError):
            container.exec(EchoProcess())

    def test_stop_stops_processes(self, env):
        container = self.make(env)
        container.start()
        process = container.exec(EchoProcess())
        container.stop()
        assert not process.running
        assert container.state is ContainerState.STOPPED

    def test_stop_requires_running(self, env):
        with pytest.raises(ContainerError):
            self.make(env).stop()

    def test_uptime_tracks_virtual_time(self, env):
        sim, _, _ = env
        container = self.make(env)
        container.start()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert container.uptime == pytest.approx(5.0)
        container.stop()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert container.uptime == pytest.approx(5.0)

    def test_find_process_missing_returns_none(self, env):
        container = self.make(env)
        container.start()
        assert container.find_process("nope") is None


class TestOrchestrator:
    def test_up_starts_replicas(self, env):
        sim, lan, orch = env
        image = Image("dev").with_entrypoint(lambda c: EchoProcess())
        orch.add_service(ServiceSpec("dev", image, replicas=3))
        containers = orch.up()
        assert len(containers) == 3
        assert sorted(c.name for c in containers) == ["dev-0", "dev-1", "dev-2"]
        assert all(c.state is ContainerState.RUNNING for c in containers)

    def test_single_replica_keeps_bare_name(self, env):
        _, _, orch = env
        orch.add_service(ServiceSpec("tserver", Image("tserver")))
        assert orch.up()[0].name == "tserver"

    def test_containers_communicate_over_lan(self, env):
        sim, lan, orch = env
        echo_image = Image("echo").with_entrypoint(lambda c: EchoProcess(port=7))
        server = orch.run("server", echo_image)
        client = orch.run("client", Image("client"))
        replies = []
        sock = client.node.udp.bind(0)
        sock.on_receive = lambda s, p, n, src, sp: replies.append(p)
        sock.send_to(server.node.address, 7, b"ping")
        sim.run(until=1.0)
        assert replies == [b"ping"]

    def test_duplicate_name_rejected(self, env):
        _, _, orch = env
        orch.run("x", Image("img"))
        with pytest.raises(ValueError):
            orch.run("x", Image("img"))

    def test_remove_detaches_from_lan(self, env):
        sim, lan, orch = env
        echo_image = Image("echo").with_entrypoint(lambda c: EchoProcess(port=7))
        server = orch.run("server", echo_image)
        client = orch.run("client", Image("client"))
        server_addr = server.node.address
        orch.remove("server")
        replies = []
        sock = client.node.udp.bind(0)
        sock.on_receive = lambda *a: replies.append(1)
        sock.send_to(server_addr, 7, b"ping")
        sim.run(until=1.0)
        assert replies == []
        assert "server" not in orch.containers

    def test_ps_lists_states(self, env):
        _, _, orch = env
        orch.run("a", Image("img"))
        orch.stop("a")
        assert orch.ps() == [("a", "img:latest", "stopped")]

    def test_down_removes_all(self, env):
        _, _, orch = env
        orch.run("a", Image("img"))
        orch.run("b", Image("img"))
        orch.down()
        assert orch.ps() == []

    def test_get_missing_raises(self, env):
        _, _, orch = env
        with pytest.raises(KeyError):
            orch.get("ghost")

    def test_limits_override_image_defaults(self, env):
        _, _, orch = env
        image = Image("img", default_limits=ResourceLimits(cpu_share=1.0))
        container = orch.run("a", image, limits=ResourceLimits(cpu_share=0.25))
        assert container.resources.limits.cpu_share == 0.25
