"""Same-seed fault-laden runs must be bit-for-bit reproducible.

Fault injection adds three new RNG consumers (wire impairments, restart
backoff jitter, plan scheduling); this regression test pins the property
that two identically seeded experiment runs produce identical captures,
identical fault traces, and identical detection reports.
"""

import pytest

from repro.testbed import Scenario, default_model_specs, run_fault_experiment


def _run():
    scenario = Scenario(n_devices=2, seed=13)
    specs = [s for s in default_model_specs(scenario.seed) if s.name == "RF"]
    return run_fault_experiment(
        scenario, train_duration=30.0, detect_duration=15.0, specs=specs
    )


@pytest.fixture(scope="module")
def runs():
    return _run(), _run()


def test_captures_are_identical(runs):
    first, second = runs
    assert first.train_summary == second.train_summary
    assert first.detect_summary == second.detect_summary


def test_fault_traces_are_identical(runs):
    first, second = runs
    assert first.fault_events == second.fault_events
    assert first.supervisor_events == second.supervisor_events
    assert first.restarts == second.restarts


def test_detection_reports_are_identical(runs):
    first, second = runs
    assert len(first.detection) == len(second.detection)
    for a, b in zip(first.detection, second.detection):
        assert a.windows == b.windows
        assert a.mean_accuracy == b.mean_accuracy
        assert a.fault_breakdown() == b.fault_breakdown()


def test_fault_run_exercised_every_path(runs):
    first, _ = runs
    report = first.detection[0]
    assert first.restarts  # the killed container came back
    assert {e.action for e in first.supervisor_events} >= {"kill", "exit", "backoff", "restart"}
    assert report.n_degraded > 0
    assert report.healthy_windows
