"""Tests for the extended Mirai attack modules (GRE/VSE/DNS/HTTP floods)."""

import pytest

from repro.apps import DnsServer, HttpServer
from repro.botnet import DnsFlood, GreFlood, HttpFlood, VseFlood, make_attack
from repro.botnet.attacks_extra import PROTO_GRE, VSE_PAYLOAD, VSE_PORT
from repro.containers import Image, Orchestrator
from repro.sim import CsmaLan, PacketProbe, Simulator


@pytest.fixture()
def env():
    sim = Simulator()
    lan = CsmaLan(sim)
    orch = Orchestrator(sim, lan)
    bot = orch.run("bot", Image("bot"))
    victim = orch.run("victim", Image("victim"))
    probe = lan.add_probe(PacketProbe())
    return sim, bot, victim, probe


class TestGreFlood:
    def test_sends_raw_gre_at_rate(self, env):
        sim, bot, victim, probe = env
        attack = GreFlood(bot.node, sim, victim.node.address, 0, pps=100, duration=2.0, seed=1)
        attack.start()
        sim.run(until=5.0)
        gre = [r for r in probe.records if r.protocol == PROTO_GRE]
        assert len(gre) == pytest.approx(200, rel=0.05)
        assert all(r.attack == "gre_flood" and r.label == 1 for r in gre)
        assert all(r.src_port == 0 and r.dst_port == 0 for r in gre)

    def test_payload_contributes_to_size(self, env):
        sim, bot, victim, probe = env
        attack = GreFlood(bot.node, sim, victim.node.address, 0, pps=10, duration=1.0,
                          seed=1, payload_bytes=700)
        attack.start()
        sim.run(until=3.0)
        assert all(r.size > 700 for r in probe.records)


class TestVseFlood:
    def test_targets_source_engine_port_with_magic(self, env):
        sim, bot, victim, probe = env
        seen_payloads = []
        sock = victim.node.udp.bind(VSE_PORT)
        sock.on_receive = lambda s, p, n, src, sp: seen_payloads.append(p)
        attack = VseFlood(bot.node, sim, victim.node.address, VSE_PORT, pps=50, duration=2.0, seed=2)
        attack.start()
        sim.run(until=5.0)
        assert len(seen_payloads) == pytest.approx(100, rel=0.05)
        assert all(p == VSE_PAYLOAD for p in seen_payloads)


class TestDnsFlood:
    def test_water_torture_unique_subdomains(self, env):
        sim, bot, victim, probe = env
        dns = victim.exec(DnsServer())
        attack = DnsFlood(bot.node, sim, victim.node.address, 53, pps=80, duration=2.0, seed=3)
        attack.start()
        sim.run(until=5.0)
        queries = [r for r in probe.records if r.dst_port == 53 and r.label == 1]
        assert len(queries) == pytest.approx(160, rel=0.05)
        # the resolver is forced to answer every query (cache-busting)
        assert dns.queries_answered == len(queries)

    def test_amplification_effect(self, env):
        """Responses are larger than queries: benign-labelled amplification."""
        sim, bot, victim, probe = env
        victim.exec(DnsServer(response_bytes=200))
        attack = DnsFlood(bot.node, sim, victim.node.address, 53, pps=40, duration=1.0, seed=4)
        attack.start()
        sim.run(until=4.0)
        answers = [r for r in probe.records if r.src_port == 53]
        queries = [r for r in probe.records if r.dst_port == 53]
        assert answers
        assert sum(r.size for r in answers) > sum(r.size for r in queries)


class TestHttpFlood:
    def test_establishes_connections_and_draws_responses(self, env):
        sim, bot, victim, probe = env
        server = victim.exec(HttpServer(n_pages=64, seed=5))
        attack = HttpFlood(
            bot.node, sim, victim.node.address, 80, pps=20, duration=4.0, seed=5,
            pool_size=4,
        )
        attack.start()
        sim.run(until=10.0)
        # reconnect backoff means not every tick finds a writable socket
        assert 30 <= attack.requests_sent <= 90
        assert server.requests_served + server.not_found > 20
        # request packets are malicious; the server's responses are not
        flood_packets = [r for r in probe.records if r.attack == "http_flood"]
        assert flood_packets
        assert all(r.dst_port == 80 for r in flood_packets if r.is_tcp and not r.is_ack or True)

    def test_stop_aborts_pool(self, env):
        sim, bot, victim, probe = env
        victim.exec(HttpServer())
        attack = HttpFlood(bot.node, sim, victim.node.address, 80, pps=20, duration=60.0, seed=6)
        attack.start()
        sim.run(until=2.0)
        attack.stop()
        assert attack._sockets == []
        count = attack.requests_sent
        sim.run(until=10.0)
        assert attack.requests_sent == count

    def test_survives_server_resets(self, env):
        """Connections refused (no server) keep being retried, not crash."""
        sim, bot, victim, probe = env
        attack = HttpFlood(bot.node, sim, victim.node.address, 80, pps=20, duration=3.0, seed=7)
        attack.start()
        sim.run(until=6.0)
        assert attack.requests_sent == 0  # nothing writable, but no errors


class TestFactoryRegistration:
    @pytest.mark.parametrize(
        "kind,cls",
        [("gre", GreFlood), ("vse", VseFlood), ("dns", DnsFlood), ("http", HttpFlood)],
    )
    def test_make_attack_knows_extended_vectors(self, env, kind, cls):
        sim, bot, victim, probe = env
        attack = make_attack(kind, bot.node, sim, victim.node.address, 80, 10, 1.0)
        assert isinstance(attack, cls)

    def test_cnc_can_order_extended_attacks(self, env):
        """Bots execute extended vectors via the same C2 order format."""
        from repro.botnet.cnc import AttackOrder

        order = AttackOrder("gre", env[2].node.address, 0, 2.0, 50.0)
        decoded = AttackOrder.decode(order.encode().decode().strip())
        assert decoded.kind == "gre"
