"""Scalar-vs-batch equivalence of TCP bulk transfers.

The benign-plane refactor lets ``TcpSocket`` send windows leave as
:class:`PacketBatch` trains and lets the receive side consume in-order
runs columnar-fast.  These tests pin the contract that makes that safe:

* an end-to-end bulk transfer is **per-direction content-identical**
  whether ``batch_segments`` is on or off: each direction of the wire
  carries exactly the same segments (addresses, sizes, flags, sequence
  numbers) in the same order, and every socket-level outcome (delivered
  messages, byte counters, final sequence state) matches exactly.  Full
  wire-order bit-identity is *not* the contract — TCP is a feedback
  loop, so scalar mode interleaves the receiver's ACKs between data
  frames where a train occupies the medium back-to-back (the same
  burst-structure shift real NIC batching introduces);
* ``handle_batch`` is **fold-invariant**: delivering an in-order segment
  train whole, or split at any contiguous cut points, or row by row,
  leaves the socket in the same state and produces the same emissions
  (hypothesis draws the train shapes and the cut points).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CsmaLan, PacketProbe, Simulator
from repro.sim.packet import PacketBatch, TcpFlags
from repro.sim.tcp import MSS, SEND_WINDOW_BYTES


def _established_pair(batch_segments):
    """One client-server pair on a fresh LAN with an established socket.

    Returns ``(sim, lan, probe, server, client, server_sock, client_sock,
    delivered)`` where ``delivered`` collects every ``on_data`` call on
    the server socket as ``(length, app_data)``.
    """
    sim = Simulator()
    lan = CsmaLan(sim, data_rate="1Gbps")
    server, client = lan.add_host("s"), lan.add_host("c")
    server.tcp.seed(1)
    client.tcp.seed(2)
    server.tcp.batch_segments = batch_segments
    client.tcp.batch_segments = batch_segments
    probe = lan.add_probe(PacketProbe())
    delivered = []
    accepted = []

    def on_accept(sock):
        sock.on_data = lambda s, p, n, a: delivered.append((n, a))
        accepted.append(sock)

    server.tcp.listen(80, on_accept)
    csock = client.tcp.socket()
    established = []
    csock.connect(server.address, 80, lambda s: established.append(s))
    sim.run(until=1.0)
    assert established and accepted, "handshake did not complete"
    return sim, lan, probe, server, client, accepted[0], csock, delivered


def _wire_rows(probe):
    """Probe records as comparable tuples (they already are named tuples)."""
    return list(probe.records)


def _direction(records, client_to_server):
    """Timestamp-free projection of one wire direction, order preserved."""
    return [
        (r.src_ip, r.dst_ip, r.src_port, r.dst_port, r.size, r.tcp_flags, r.seq)
        for r in records
        if (r.dst_port == 80) == client_to_server
    ]


class TestScalarVsBatchBulkTransfer:
    def _transfer(self, batch_segments, total):
        sim, _, probe, server, client, ssock, csock, delivered = _established_pair(
            batch_segments
        )
        csock.send(length=total, app_data="xfer")
        sim.run(until=30.0)
        records = _wire_rows(probe)
        return {
            "n_records": len(records),
            "data_path": _direction(records, client_to_server=True),
            "ack_path": _direction(records, client_to_server=False),
            "delivered": list(delivered),
            "bytes_received": ssock.bytes_received,
            "bytes_sent": csock.bytes_sent,
            "snd_una": csock.snd_una,
            "rcv_nxt": ssock.rcv_nxt,
        }

    def test_single_window_content_identical(self):
        scalar = self._transfer(False, 20_000)
        batched = self._transfer(True, 20_000)
        assert scalar == batched
        assert scalar["bytes_received"] == 20_000

    def test_multi_window_content_identical(self):
        total = 3 * SEND_WINDOW_BYTES + 777
        scalar = self._transfer(False, total)
        batched = self._transfer(True, total)
        assert scalar == batched
        assert scalar["bytes_received"] == total

    @settings(max_examples=12, deadline=None)
    @given(total=st.integers(min_value=1, max_value=4 * MSS))
    def test_any_message_size_content_identical(self, total):
        assert self._transfer(False, total) == self._transfer(True, total)


@st.composite
def _train_shapes(draw):
    """An in-order data train (per-segment lengths) plus fold cut points."""
    lens = draw(st.lists(st.integers(1, MSS), min_size=2, max_size=24))
    n = len(lens)
    cuts = draw(st.sets(st.integers(1, n - 1), max_size=n - 1))
    bounds = [0, *sorted(cuts), n]
    folds = list(zip(bounds, bounds[1:]))
    return lens, folds


def _data_train(client, server, csock, lens):
    """The train ``csock`` would emit for one write of ``sum(lens)`` bytes."""
    n = len(lens)
    lens_arr = np.asarray(lens, dtype=np.int64)
    shifted = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(lens_arr[:-1])))
    seqs = (int(csock.snd_nxt) + shifted) & np.int64(0xFFFFFFFF)
    return PacketBatch.tcp_batch(
        n,
        src_ip=client.address.value,
        dst_ip=server.address.value,
        src_port=csock.local_port,
        dst_port=80,
        seq=seqs,
        ack=int(csock.rcv_nxt),
        flags=TcpFlags.ACK | TcpFlags.PSH,
        payload_len=lens_arr,
    )


class TestHandleBatchFoldInvariance:
    def _deliver_folds(self, lens, folds):
        sim, _, probe, server, client, ssock, csock, delivered = _established_pair(True)
        train = _data_train(client, server, csock, lens)
        for start, stop in folds:
            ssock.handle_batch(train.slice(start, stop))
        sim.run(until=2.0)
        return {
            "rcv_nxt": ssock.rcv_nxt,
            "bytes_received": ssock.bytes_received,
            "snd_nxt": ssock.snd_nxt,
            "delivered": list(delivered),
            "records": _wire_rows(probe),
        }

    @settings(max_examples=20, deadline=None)
    @given(shape=_train_shapes())
    def test_fold_equivalence_on_data_trains(self, shape):
        lens, folds = shape
        whole = self._deliver_folds(lens, [(0, len(lens))])
        split = self._deliver_folds(lens, folds)
        assert whole == split
        assert whole["bytes_received"] == sum(lens)

    def test_row_by_row_matches_whole_train(self):
        lens = [MSS] * 7 + [311]
        whole = self._deliver_folds(lens, [(0, len(lens))])
        rows = self._deliver_folds(lens, [(i, i + 1) for i in range(len(lens))])
        assert whole == rows


class TestAckTrainFoldInvariance:
    def _ack_folds(self, cuts):
        """Send a window, then deliver its cumulative ACKs in folds."""
        sim, _, probe, server, client, ssock, csock, delivered = _established_pair(True)
        total = SEND_WINDOW_BYTES  # fills the window: 46 full + 1 short segment
        csock.send(length=total)
        lens = [min(MSS, total - off) for off in range(0, total, MSS)]
        acked = np.cumsum(np.asarray(lens, dtype=np.int64))
        acks = (int(csock.snd_una) + acked) & np.int64(0xFFFFFFFF)
        n = len(lens)
        train = PacketBatch.tcp_batch(
            n,
            src_ip=server.address.value,
            dst_ip=client.address.value,
            src_port=80,
            dst_port=csock.local_port,
            seq=int(csock.rcv_nxt),
            ack=acks,
            flags=TcpFlags.ACK,
            payload_len=0,
        )
        bounds = [0, *cuts, n]
        for start, stop in zip(bounds, bounds[1:]):
            csock.handle_batch(train.slice(start, stop))
        state = {
            "snd_una": csock.snd_una,
            "inflight": csock.inflight_bytes,
        }
        sim.run(until=5.0)
        state["records"] = _wire_rows(probe)
        state["delivered_after_run"] = list(delivered)
        return state

    def test_ack_train_fold_equivalence(self):
        whole = self._ack_folds([])
        halves = self._ack_folds([23])
        thirds = self._ack_folds([11, 31])
        rows = self._ack_folds(list(range(1, 47)))
        assert whole == halves == thirds == rows
        assert whole["inflight"] == 0  # the train acked the entire window
