"""Property-based and stress tests for the simulated network stack."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import CsmaLan, PacketProbe, Simulator
from repro.sim.tcp import TcpState


@settings(max_examples=10, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=40_000), min_size=1, max_size=6),
    seed=st.integers(0, 2**16),
)
def test_property_tcp_delivers_every_transfer_exactly(sizes, seed):
    """Any set of concurrent transfers arrives complete and exact."""
    sim = Simulator()
    lan = CsmaLan(sim, data_rate="50Mbps")
    server = lan.add_host("server")
    received: dict[int, int] = {}

    def on_accept(sock):
        key = sock.remote_port

        def on_data(s, payload, length, app_data):
            received[s.remote_port] = received.get(s.remote_port, 0) + length

        sock.on_data = on_data

    server.tcp.listen(80, on_accept, backlog=64)
    clients = []
    expected = {}
    for i, size in enumerate(sizes):
        client = lan.add_host(f"c{i}")
        client.tcp.seed(seed + i)
        sock = client.tcp.socket()
        sock.connect(server.address, 80, lambda s, size=size: s.send(length=size))
        clients.append(sock)
        expected[sock.local_port] = size
    sim.run(until=120.0)
    assert received == expected


@settings(max_examples=8, deadline=None)
@given(
    capacity=st.integers(min_value=2, max_value=8),
    size=st.integers(min_value=10_000, max_value=60_000),
)
def test_property_tcp_reliable_under_any_queue_pressure(capacity, size):
    """Tiny TX queues force drops; retransmission still completes transfers."""
    sim = Simulator()
    lan = CsmaLan(sim, data_rate="2Mbps")
    server = lan.add_host("server")
    client = lan.add_host("client", queue_capacity=capacity)
    got = []
    server.tcp.listen(80, lambda s: setattr(
        s, "on_data", lambda ss, p, n, a: got.append(n)))
    sock = client.tcp.socket()
    sock.connect(server.address, 80, lambda s: s.send(length=size))
    sim.run(until=240.0)
    assert sum(got) == size


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_probe_count_conserved(seed):
    """The promiscuous tap sees every delivered frame exactly once."""
    sim = Simulator()
    lan = CsmaLan(sim)
    a = lan.add_host("a")
    b = lan.add_host("b")
    probe = lan.add_probe(PacketProbe())
    rng = random.Random(seed)
    sock_b = b.udp.bind(9)
    sock_a = a.udp.bind(0)
    n = rng.randrange(1, 50)
    for _ in range(n):
        sock_a.send_to(b.address, 9, length=rng.randrange(1, 1400))
    sim.run(until=5.0)
    assert probe.count == n
    assert b.udp.sockets[9].datagrams_received == n


def test_many_concurrent_connections_no_state_leak():
    """Hundreds of sequential connections: every socket reaches CLOSED and
    ports are recycled."""
    sim = Simulator()
    lan = CsmaLan(sim, data_rate="100Mbps")
    server = lan.add_host("server")
    client = lan.add_host("client")
    completed = []

    def serve(sock):
        sock.on_data = lambda s, p, n, a: (s.send(b"ok"), s.close())

    server.tcp.listen(80, serve, backlog=128)

    def start_one(i):
        sock = client.tcp.socket()
        sock.on_close = lambda s: s.close()  # respond to server FIN

        def on_est(s):
            s.on_data = lambda ss, p, n, a: completed.append(i)
            s.send(b"hi")

        sock.connect(server.address, 80, on_est)

    for i in range(200):
        sim.schedule(i * 0.02, start_one, i)
    sim.run(until=120.0)
    assert len(completed) == 200
    # all connection state torn down on both sides
    assert len(client.tcp.sockets) == 0
    assert len(server.tcp.sockets) == 0
    # ephemeral ports were released along the way
    assert len(client.tcp._ports_in_use) == 0


def test_interleaved_floods_and_benign_transfer():
    """A benign transfer completes while three flood types hammer the LAN."""
    from repro.botnet import AckFlood, SynFlood, UdpFlood

    sim = Simulator()
    lan = CsmaLan(sim, data_rate="100Mbps")
    server = lan.add_host("server")
    client = lan.add_host("client")
    bot = lan.add_host("bot")
    got = []
    server.tcp.listen(80, lambda s: setattr(
        s, "on_data", lambda ss, p, n, a: got.append(n)), backlog=512)
    for cls, seed in ((SynFlood, 1), (AckFlood, 2), (UdpFlood, 3)):
        cls(bot, sim, server.address, 80, pps=300, duration=10.0, seed=seed).start()
    sock = client.tcp.socket()
    sim.schedule(1.0, sock.connect, server.address, 80,
                 lambda s: s.send(length=200_000))
    sim.run(until=120.0)
    assert sum(got) == 200_000


def test_post_run_sockets_quiesce():
    """After all work completes the event queue drains (no timer leaks)."""
    sim = Simulator()
    lan = CsmaLan(sim)
    server = lan.add_host("server")
    client = lan.add_host("client")
    server.tcp.listen(80, lambda s: s.close())
    sock = client.tcp.socket()
    sock.on_close = lambda s: s.close()
    sock.connect(server.address, 80)
    sim.run(until=300.0)
    assert sock.state is TcpState.CLOSED
    sim.run()  # drains without hanging
    assert sim.pending_events == 0
