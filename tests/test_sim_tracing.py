"""Tests for packet records, probes, and pcap round-trips."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.sim import CsmaLan, PacketProbe, PcapReader, PcapWriter, Simulator
from repro.sim.address import Ipv4Address, MacAddress
from repro.sim.packet import (
    EthernetHeader,
    Ipv4Header,
    Packet,
    PROTO_TCP,
    Provenance,
    TcpFlags,
    TcpHeader,
)
from repro.sim.tracing import PacketRecord


def make_packet(flags=TcpFlags.SYN, malicious=False, attack=None):
    return Packet(
        eth=EthernetHeader(MacAddress(1), MacAddress(2)),
        ip=Ipv4Header(
            src=Ipv4Address.parse("10.0.0.1"),
            dst=Ipv4Address.parse("10.0.0.2"),
            protocol=PROTO_TCP,
        ),
        tcp=TcpHeader(src_port=1000, dst_port=80, seq=5, flags=flags),
        payload=b"data",
        provenance=Provenance("x", malicious, attack),
    )


class TestPacketRecord:
    def test_from_packet_extracts_fields(self):
        record = PacketRecord.from_packet(make_packet(), 1.5)
        assert record.timestamp == 1.5
        assert record.src_port == 1000
        assert record.dst_port == 80
        assert record.is_tcp and not record.is_udp
        assert record.is_syn
        assert record.label == 0

    def test_malicious_label_from_provenance(self):
        record = PacketRecord.from_packet(
            make_packet(malicious=True, attack="udp"), 0.0
        )
        assert record.label == 1
        assert record.attack == "udp"

    def test_syn_ack_is_not_pure_syn(self):
        record = PacketRecord.from_packet(
            make_packet(flags=TcpFlags.SYN | TcpFlags.ACK), 0.0
        )
        assert not record.is_syn
        assert record.is_ack

    def test_flow_key_five_tuple(self):
        record = PacketRecord.from_packet(make_packet(), 0.0)
        src = Ipv4Address.parse("10.0.0.1").value
        dst = Ipv4Address.parse("10.0.0.2").value
        assert record.flow_key == (src, 1000, dst, 80, PROTO_TCP)

    def test_packet_without_ip_rejected(self):
        with pytest.raises(ValueError):
            PacketRecord.from_packet(Packet(payload=b"raw"), 0.0)


class TestProbe:
    def test_sink_subscription_streams_records(self):
        probe = PacketProbe()
        seen = []
        probe.subscribe(seen.append)
        probe(make_packet(), 1.0)
        probe(make_packet(), 2.0)
        assert [r.timestamp for r in seen] == [1.0, 2.0]

    def test_keep_records_false_still_counts(self):
        probe = PacketProbe(keep_records=False)
        probe(make_packet(), 1.0)
        assert probe.count == 1
        assert probe.records == []

    def test_non_ip_frames_ignored(self):
        probe = PacketProbe()
        probe(Packet(payload=b"junk"), 0.0)
        assert probe.count == 0


class TestPcap:
    def test_roundtrip_preserves_headers_and_timestamps(self, tmp_path):
        path = tmp_path / "trace.pcap"
        packets = [make_packet(flags=TcpFlags(f)) for f in (2, 18, 16)]
        with PcapWriter(path) as writer:
            for i, packet in enumerate(packets):
                writer.write(packet, 10.0 + i * 0.125)
        readback = list(PcapReader(path))
        assert len(readback) == 3
        for i, (ts, packet) in enumerate(readback):
            assert ts == pytest.approx(10.0 + i * 0.125, abs=1e-9)
            assert packet.tcp == packets[i].tcp
            assert packet.ip.src == packets[i].ip.src

    def test_global_header_is_valid_libpcap(self, tmp_path):
        path = tmp_path / "t.pcap"
        PcapWriter(path).close()
        header = path.read_bytes()
        magic, major, minor = struct.unpack("<IHH", header[:8])
        assert magic == 0xA1B2C3D2
        assert (major, minor) == (2, 4)
        (linktype,) = struct.unpack("<I", header[20:24])
        assert linktype == 1  # Ethernet

    def test_reader_rejects_non_pcap(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(ValueError):
            list(PcapReader(path))

    def test_reader_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\x01\x02")
        with pytest.raises(ValueError):
            list(PcapReader(path))

    def test_context_manager_closes_on_error(self, tmp_path):
        path = tmp_path / "crash.pcap"
        with pytest.raises(RuntimeError):
            with PcapWriter(path) as writer:
                writer.write(make_packet(), 1.0)
                raise RuntimeError("experiment died mid-capture")
        assert writer.closed
        # Everything written before the crash is readable.
        assert len(list(PcapReader(path))) == 1

    def test_close_is_idempotent_and_blocks_writes(self, tmp_path):
        writer = PcapWriter(tmp_path / "t.pcap")
        writer.write(make_packet(), 0.5)
        writer.close()
        writer.close()
        assert writer.closed
        with pytest.raises(ValueError, match="closed"):
            writer.write(make_packet(), 1.0)

    def test_flush_makes_partial_capture_readable(self, tmp_path):
        path = tmp_path / "partial.pcap"
        writer = PcapWriter(path)
        writer.write(make_packet(), 1.0)
        writer.write(make_packet(), 2.0)
        writer.flush()
        # Read while the writer is still open — a monitoring tool's view.
        assert [ts for ts, _ in PcapReader(path)] == pytest.approx([1.0, 2.0])
        writer.close()
        writer.flush()  # no-op after close

    def test_reader_drops_truncated_trailing_record(self, tmp_path):
        path = tmp_path / "torn.pcap"
        with PcapWriter(path) as writer:
            writer.write(make_packet(), 1.0)
            writer.write(make_packet(), 2.0)
        # Simulate a crash torn mid-record: cut the last record's data short.
        blob = path.read_bytes()
        path.write_bytes(blob[:-7])
        frames = list(PcapReader(path))
        assert [ts for ts, _ in frames] == pytest.approx([1.0])

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=20))
    def test_property_timestamps_roundtrip(self, timestamps):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "ts.pcap"
            with PcapWriter(path) as writer:
                for ts in timestamps:
                    writer.write(make_packet(), ts)
            readback = [ts for ts, _ in PcapReader(path)]
        for original, recovered in zip(timestamps, readback):
            assert recovered == pytest.approx(original, abs=1e-6)


class TestLiveCapture:
    def test_probe_with_pcap_during_simulation(self, tmp_path):
        sim = Simulator()
        lan = CsmaLan(sim)
        a, b = lan.add_host("a"), lan.add_host("b")
        writer = PcapWriter(tmp_path / "live.pcap")
        probe = lan.add_probe(PacketProbe(pcap=writer))
        b.tcp.listen(80, lambda s: None)
        sock = a.tcp.socket()
        sock.connect(b.address, 80, lambda s: s.send(b"payload"))
        sim.run(until=2.0)
        writer.close()
        frames = list(PcapReader(tmp_path / "live.pcap"))
        assert len(frames) == probe.count
        assert any(f.payload == b"payload" for _, f in frames)
