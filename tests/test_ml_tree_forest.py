"""Tests for decision trees and the random forest."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import DecisionTreeClassifier, RandomForestClassifier, accuracy_score
from repro.ml.preprocessing import NotFittedError


def xor_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


def gaussian_data(n=400, seed=0, d=5, sep=2.0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0, 1, (n // 2, d))
    X1 = rng.normal(sep, 1, (n // 2, d))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestDecisionTree:
    def test_fits_training_data_exactly_when_unbounded(self):
        X, y = xor_data()
        tree = DecisionTreeClassifier().fit(X, y)
        assert accuracy_score(y, tree.predict(X)) == 1.0

    def test_xor_needs_depth_two(self):
        X, y = xor_data()
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert accuracy_score(y, shallow.predict(X)) < 0.75
        assert accuracy_score(y, deep.predict(X)) > 0.95

    def test_max_depth_respected(self):
        X, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.depth_ <= 3

    def test_min_samples_leaf(self):
        X, y = gaussian_data(100)
        tree = DecisionTreeClassifier(min_samples_leaf=20).fit(X, y)

        def check(node):
            if node.is_leaf:
                assert node.counts.sum() >= 20 or node is tree.root_
            else:
                check(node.left)
                check(node.right)

        check(tree.root_)

    def test_pure_node_stops_splitting(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.root_.is_leaf
        assert tree.node_count_ == 1

    def test_constant_features_yield_leaf(self):
        X = np.ones((10, 3))
        y = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.root_.is_leaf

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((2, 2)))

    def test_predict_proba_rows_sum_to_one(self):
        X, y = gaussian_data()
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 2)), np.zeros(4))

    def test_generalizes_on_held_out(self):
        X, y = gaussian_data(600, seed=1)
        tree = DecisionTreeClassifier(max_depth=6).fit(X[:400], y[:400])
        assert accuracy_score(y[400:], tree.predict(X[400:])) > 0.9

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_property_prediction_matches_training_label_on_separable(self, seed):
        """On perfectly separable 1-D data the tree recovers the rule."""
        rng = np.random.default_rng(seed)
        X = rng.uniform(-1, 1, (60, 1))
        y = (X[:, 0] > 0.1).astype(int)
        if len(np.unique(y)) < 2:
            return
        tree = DecisionTreeClassifier().fit(X, y)
        np.testing.assert_array_equal(tree.predict(X), y)


class TestRandomForest:
    def test_outperforms_or_matches_single_stump(self):
        X, y = xor_data(600, seed=2)
        forest = RandomForestClassifier(n_estimators=20, max_depth=6, random_state=0)
        forest.fit(X[:400], y[:400])
        assert accuracy_score(y[400:], forest.predict(X[400:])) > 0.9

    def test_vote_is_majority(self):
        X, y = gaussian_data(300, seed=3)
        forest = RandomForestClassifier(n_estimators=5, max_depth=4).fit(X, y)
        votes = np.stack([tree.predict(X) for tree in forest.trees_])
        expected = (votes.sum(axis=0) > 2.5).astype(int)
        np.testing.assert_array_equal(forest.predict(X), expected)

    def test_deterministic_by_seed(self):
        X, y = gaussian_data(200, seed=4)
        a = RandomForestClassifier(n_estimators=5, random_state=7).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=7).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_different_seeds_differ(self):
        X, y = xor_data(200, seed=5)
        a = RandomForestClassifier(n_estimators=3, max_depth=2, random_state=1).fit(X, y)
        b = RandomForestClassifier(n_estimators=3, max_depth=2, random_state=2).fit(X, y)
        assert not np.array_equal(a.predict_proba(X), b.predict_proba(X))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict(np.zeros((2, 2)))

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_predict_proba_valid_distribution(self):
        X, y = gaussian_data(200, seed=6)
        forest = RandomForestClassifier(n_estimators=8, max_depth=5).fit(X, y)
        proba = forest.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_total_nodes_counts_all_trees(self):
        X, y = gaussian_data(100, seed=7)
        forest = RandomForestClassifier(n_estimators=4, max_depth=3).fit(X, y)
        assert forest.total_nodes_ == sum(t.node_count_ for t in forest.trees_)
        assert forest.total_nodes_ >= 4
