"""Tests for the performance-observability plane.

Pins the ISSUE-10 guarantees: the kernel profiler attributes ≥95% of
measured wall time to named subsystems on a flood scene, profiling
never perturbs simulation outcomes (identical
``ExperimentResult.fingerprint()`` with profiling on/off) and its
deterministic exports are byte-identical across same-seed repeats, the
profiling-off dispatch overhead stays within a pinned ratio, the bench
history store appends/merges/upgrades correctly and ``bench-compare``
catches an injected regression, the flight recorder's ring is bounded
and rides fatal sanitizer errors and campaign timeout tombstones, and
the timeline export guards hold against NaN and far-future samples.
"""

import json
import math

import pytest

from repro import obs
from repro.obs import FlightRecorder, Histogram, KernelProfiler, RunTimeline
from repro.obs.bench import run_profiler_overhead_benchmark
from repro.obs.profile import callsite_label, classify_owner
from repro.obs.regress import (
    SCHEMA,
    compare_file,
    compare_section,
    config_fingerprint,
    extract_metrics,
    load_history,
    record_benchmark,
)
from repro.sim.bench import build_and_run_flood
from repro.sim.core import Simulator
from repro.testbed import Scenario, run_full_experiment

SCENARIO = Scenario(n_devices=2, seed=5)
TRAIN, DETECT = 25.0, 12.0


def _profiled_flood(seed: int = 7, n_nodes: int = 8):
    """One small SYN flood under a profiling scope; returns (run, ctx)."""
    ctx = obs.ObsContext.make(enabled=True, profile=True)
    with obs.scope(ctx):
        run = build_and_run_flood(
            n_nodes=n_nodes,
            batch=True,
            pps_per_node=2000.0,
            duration=0.05,
            seed=seed,
            attack="syn",
            devices_per_segment=0,
        )
    return run, ctx


# ----------------------------------------------------------------------
# Histogram.percentile


class TestHistogramPercentile:
    def test_percentiles_report_bucket_upper_bounds(self):
        hist = Histogram(buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.7, 3.0, 4.0):
            hist.observe(value)
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(0.5) == 2.0
        assert hist.percentile(1.0) == 5.0

    def test_overflow_observations_report_inf(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(10.0)
        assert hist.percentile(0.5) == math.inf

    def test_empty_histogram_reports_zero(self):
        assert Histogram().percentile(0.99) == 0.0

    def test_out_of_range_rank_rejected(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_snapshot_exports_explicit_inf_bucket(self):
        registry = obs.MetricsRegistry(enabled=True)
        hist = registry.histogram("t.latency", buckets=(1.0, 2.0))
        hist.observe(99.0)
        buckets = registry.snapshot()["t.latency"]["buckets"]
        assert buckets["+Inf"] == 1
        assert set(buckets) == {"1.0", "2.0", "+Inf"}


# ----------------------------------------------------------------------
# Owner classification / labels


class TestOwnerClassification:
    def test_exact_module_owners(self):
        assert classify_owner("repro.sim.queue") == "queue"
        assert classify_owner("repro.sim.channel") == "channel"
        assert classify_owner("repro.sim.tcp") == "tcp"
        assert classify_owner("repro.sim.tracing") == "probe"
        assert classify_owner("repro.ids.defense") == "filter"

    def test_prefix_owners(self):
        assert classify_owner("repro.botnet.attacks") == "bot"
        assert classify_owner("repro.apps.http") == "app"
        assert classify_owner("repro.ids.models") == "ids"

    def test_unknown_module_is_other(self):
        assert classify_owner("collections.abc") == "other"

    def test_callsite_label_for_bound_method(self):
        class Widget:
            def tick(self):
                pass

        label = callsite_label(Widget().tick)
        assert label.endswith("Widget.tick")

    def test_callsite_label_for_function(self):
        def handler():
            pass

        assert "handler" in callsite_label(handler)


# ----------------------------------------------------------------------
# Kernel profiler


class TestKernelProfiler:
    def test_attribution_meets_flood_floor(self):
        _, ctx = _profiled_flood()
        attribution = ctx.profiler.attribution()
        assert attribution["total_wall_seconds"] > 0.0
        assert attribution["named_fraction"] >= 0.95

    def test_profiler_counts_match_kernel(self):
        run, ctx = _profiled_flood()
        profiled_events = sum(
            row["events"] for row in ctx.profiler.snapshot()["callsites"]
        )
        assert profiled_events == run["events"]

    def test_deterministic_exports_byte_identical_across_repeats(self):
        _, first = _profiled_flood(seed=11)
        _, second = _profiled_flood(seed=11)
        assert json.dumps(first.profiler.snapshot(include_wall=False)) == json.dumps(
            second.profiler.snapshot(include_wall=False)
        )
        assert first.profiler.format_table(include_wall=False) == second.profiler.format_table(
            include_wall=False
        )
        assert first.profiler.collapsed_stacks(include_wall=False) == second.profiler.collapsed_stacks(
            include_wall=False
        )

    def test_batch_stats_see_trains(self):
        _, ctx = _profiled_flood()
        batch = ctx.profiler.batch_stats()
        assert batch["trains"] > 0
        assert batch["mean_train_packets"] > 1.0

    def test_collapsed_stacks_shape(self):
        _, ctx = _profiled_flood()
        lines = ctx.profiler.collapsed_stacks(include_wall=False).strip().splitlines()
        assert lines
        for line in lines:
            frames, weight = line.rsplit(" ", 1)
            assert ";" in frames
            assert int(weight) > 0

    def test_periodic_events_attributed_to_driven_callback(self):
        calls = []

        def tick():
            calls.append(1)

        ctx = obs.ObsContext.make(enabled=True, profile=True)
        with obs.scope(ctx):
            sim = Simulator()
            sim.schedule_periodic(0.5, tick)
            sim.run(until=2.6)
        labels = [row["callsite"] for row in ctx.profiler.snapshot()["callsites"]]
        assert any("tick" in label for label in labels)
        assert not any("_fire" in label for label in labels)

    def test_exceptions_propagate_through_dispatch(self):
        def boom():
            raise RuntimeError("kaboom")

        ctx = obs.ObsContext.make(enabled=True, profile=True)
        with obs.scope(ctx):
            sim = Simulator()
            sim.schedule(0.1, boom)
            with pytest.raises(RuntimeError, match="kaboom"):
                sim.run()
        # The failed dispatch is still attributed.
        assert any(
            "boom" in row["callsite"]
            for row in ctx.profiler.snapshot()["callsites"]
        )

    def test_profiling_does_not_perturb_experiment(self):
        plain = run_full_experiment(
            SCENARIO, train_duration=TRAIN, detect_duration=DETECT
        )
        with obs.scope(profile=True):
            profiled = run_full_experiment(
                SCENARIO, train_duration=TRAIN, detect_duration=DETECT
            )
        assert plain.fingerprint() == profiled.fingerprint()

    def test_profile_off_dispatch_overhead_bounded(self):
        result = run_profiler_overhead_benchmark(iterations=20_000, repeats=3)
        # The un-profiled dispatch site pays one `is None` check per
        # event; same generous bound style as the NULL_INSTRUMENT pin.
        assert result["profile_off_ratio"] < 2.0
        assert result["profile_on_ratio"] < 75.0


# ----------------------------------------------------------------------
# Flight recorder


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.note(float(i), "tick")
        assert len(recorder) == 4
        assert recorder.total_recorded == 10
        times = [entry["time"] for entry in recorder.to_dicts()]
        assert times == [6.0, 7.0, 8.0, 9.0]

    def test_disabled_recorder_records_nothing(self):
        recorder = FlightRecorder(enabled=False)
        recorder.note(1.0, "tick")
        assert len(recorder) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_dispatch_entries_resolve_callback_labels(self):
        class Widget:
            def tick(self):
                pass

        recorder = FlightRecorder()
        recorder.note_dispatch(1.5, Widget().tick)
        entry = recorder.to_dicts()[0]
        assert entry["kind"] == "dispatch"
        assert entry["detail"].endswith("Widget.tick")

    def test_dump_includes_metric_state(self):
        recorder = FlightRecorder()
        recorder.note(0.0, "tick")
        registry = obs.MetricsRegistry(enabled=True)
        registry.counter("sim.packets").inc(3)
        dump = recorder.dump(registry=registry)
        assert dump["total_recorded"] == 1
        assert dump["entries"][0]["kind"] == "tick"
        assert dump["metrics"]["sim.packets"]["value"] == 3.0

    def test_scope_feeds_spans_events_and_dispatches(self):
        ctx = obs.ObsContext.make(enabled=True)
        with obs.scope(ctx):
            sim = Simulator()
            sim.schedule(0.1, lambda: None)
            with ctx.tracer.span("stage.build"):
                sim.run()
            ctx.events.record(1.0, "attack.start")
        kinds = {entry["kind"] for entry in ctx.flight.to_dicts()}
        assert {"span.open", "span.close", "dispatch", "attack.start"} <= kinds

    def test_sanitizer_error_carries_flight_dump(self):
        from repro.analysis.sanitizers import Sanitizer, SanitizerError

        ctx = obs.ObsContext.make(enabled=True)
        with obs.scope(ctx):
            ctx.events.record(0.5, "queue.drop", "lan")
            sanitizer = Sanitizer(fatal=True)
            with pytest.raises(SanitizerError) as excinfo:
                sanitizer.violation("EVT001", "time went backwards", time=1.0)
        dump = excinfo.value.flight_dump
        assert dump is not None
        assert dump["entries"]


# ----------------------------------------------------------------------
# Campaign tombstones carry postmortems


class TestCampaignFlight:
    def _cell(self):
        from repro.pipeline.campaign import CampaignSpec, expand_grid

        spec = CampaignSpec(
            scenarios=(Scenario(n_devices=2),),
            seeds=(5,),
            train_duration=TRAIN,
            detect_duration=DETECT,
        )
        return expand_grid(spec)[0]

    def test_timeout_tombstone_has_nonempty_flight_dump(self):
        from repro.pipeline.campaign import execute_run_safe

        record = execute_run_safe(self._cell(), max_retries=0, run_timeout=0.2)
        assert record.failed
        assert "budget" in record.error
        assert record.flight is not None
        assert record.flight["entries"]
        payload = record.to_dict(include_timing=False)
        assert payload["flight"]["entries"]

    def test_successful_run_has_no_flight_dump(self, tmp_path):
        from repro.pipeline.campaign import execute_run_safe

        record = execute_run_safe(self._cell())
        assert not record.failed
        assert record.flight is None


# ----------------------------------------------------------------------
# Bench history + regression gate


def _flood_result(pps: float, nodes: int = 16) -> dict:
    return {
        "node_counts": [nodes],
        "pps_per_node": 20000.0,
        "duration_seconds": 0.05,
        "seed": 7,
        "attack": "syn",
        "runs": [
            {
                "nodes": nodes,
                "batch": {"packets_per_second": pps},
                "speedup_packets_per_second": pps / 1000.0,
            }
        ],
    }


class TestBenchHistory:
    def test_record_creates_history_schema(self, tmp_path):
        path = tmp_path / "BENCH.json"
        record_benchmark(_flood_result(9000.0), path, "flood", sha="aaa", date="d1")
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA
        assert len(payload["entries"]) == 1
        assert payload["entries"][0]["sha"] == "aaa"

    def test_same_sha_sections_merge_into_one_entry(self, tmp_path):
        path = tmp_path / "BENCH.json"
        record_benchmark(_flood_result(9000.0), path, "flood", sha="aaa", date="d1")
        record_benchmark(_flood_result(8000.0), path, "benign", sha="aaa", date="d1")
        history = load_history(path)
        assert len(history["entries"]) == 1
        assert set(history["entries"][0]["sections"]) == {"flood", "benign"}

    def test_new_sha_appends_entry(self, tmp_path):
        path = tmp_path / "BENCH.json"
        record_benchmark(_flood_result(9000.0), path, "flood", sha="aaa", date="d1")
        record_benchmark(_flood_result(9500.0), path, "flood", sha="bbb", date="d2")
        history = load_history(path)
        assert [entry["sha"] for entry in history["entries"]] == ["aaa", "bbb"]

    def test_legacy_sectioned_file_upgrades(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"flood": _flood_result(9000.0)}))
        history = load_history(path)
        assert history["schema"] == SCHEMA
        entry = history["entries"][0]
        assert entry["sha"] == "legacy"
        assert "flood" in entry["sections"]

    def test_legacy_flat_features_file_upgrades(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"offline_transform": {"speedup": 8.0}}))
        history = load_history(path)
        assert "features" in history["entries"][0]["sections"]

    def test_unparseable_file_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("not json{")
        assert load_history(path) == {"schema": SCHEMA, "entries": []}

    def test_fingerprint_ignores_measurements(self):
        fast, slow = _flood_result(9000.0), _flood_result(100.0)
        assert config_fingerprint(fast) == config_fingerprint(slow)
        different = dict(fast, seed=8)
        assert config_fingerprint(different) != config_fingerprint(fast)

    def test_extract_metrics_directions(self):
        metrics = extract_metrics(
            {
                "runs": [
                    {
                        "nodes": 16,
                        "batch": {"packets_per_second": 9000.0},
                        "speedup_packets_per_second": 9.0,
                    }
                ],
                "per_window_latency": {"speedup": 8.7, "vectorized_mean_ms": 0.4},
            }
        )
        assert metrics["nodes16.batch_pkts_per_s"] == (9000.0, "higher")
        assert metrics["nodes16.speedup"] == (9.0, "higher")
        assert metrics["window.vectorized_mean_ms"] == (0.4, "lower")


class TestBenchCompare:
    def test_detects_injected_regression(self, tmp_path):
        path = tmp_path / "BENCH.json"
        record_benchmark(_flood_result(9000.0), path, "flood", sha="aaa", date="d1")
        record_benchmark(_flood_result(3000.0), path, "flood", sha="bbb", date="d2")
        comparison = compare_section(load_history(path), "flood", tolerance=0.30)
        assert not comparison.ok
        names = {delta.name for delta in comparison.regressions}
        assert "nodes16.batch_pkts_per_s" in names

    def test_within_tolerance_passes(self, tmp_path):
        path = tmp_path / "BENCH.json"
        record_benchmark(_flood_result(9000.0), path, "flood", sha="aaa", date="d1")
        record_benchmark(_flood_result(8000.0), path, "flood", sha="bbb", date="d2")
        comparison = compare_section(load_history(path), "flood", tolerance=0.30)
        assert comparison.ok
        assert comparison.deltas

    def test_improvement_passes(self, tmp_path):
        path = tmp_path / "BENCH.json"
        record_benchmark(_flood_result(9000.0), path, "flood", sha="aaa", date="d1")
        record_benchmark(_flood_result(30000.0), path, "flood", sha="bbb", date="d2")
        assert compare_section(load_history(path), "flood", tolerance=0.30).ok

    def test_single_entry_has_no_baseline_and_passes(self, tmp_path):
        path = tmp_path / "BENCH.json"
        record_benchmark(_flood_result(9000.0), path, "flood", sha="aaa", date="d1")
        comparison = compare_section(load_history(path), "flood")
        assert comparison.ok
        assert comparison.baseline_sha is None

    def test_config_change_starts_new_lineage(self, tmp_path):
        path = tmp_path / "BENCH.json"
        record_benchmark(_flood_result(9000.0), path, "flood", sha="aaa", date="d1")
        changed = dict(_flood_result(100.0), seed=99)
        record_benchmark(changed, path, "flood", sha="bbb", date="d2")
        comparison = compare_section(load_history(path), "flood", tolerance=0.30)
        # Different fingerprint: the slow run is not compared to the
        # fast one — an experiment-shape change is not a regression.
        assert comparison.baseline_sha is None
        assert comparison.ok

    def test_baseline_sha_prefix_selects_entry(self, tmp_path):
        path = tmp_path / "BENCH.json"
        record_benchmark(_flood_result(9000.0), path, "flood", sha="aaa1", date="d1")
        record_benchmark(_flood_result(5000.0), path, "flood", sha="bbb2", date="d2")
        record_benchmark(_flood_result(4800.0), path, "flood", sha="ccc3", date="d3")
        strict = compare_section(load_history(path), "flood", baseline="aaa")
        assert strict.baseline_sha == "aaa1"
        assert not strict.ok
        lenient = compare_section(load_history(path), "flood", baseline="bbb")
        assert lenient.ok

    def test_compare_file_discovers_sections(self, tmp_path):
        path = tmp_path / "BENCH.json"
        record_benchmark(_flood_result(9000.0), path, "flood", sha="aaa", date="d1")
        comparisons = compare_file(path)
        assert [c.section for c in comparisons] == ["flood"]

    def test_missing_file_compares_empty(self, tmp_path):
        assert compare_file(tmp_path / "absent.json") == []


# ----------------------------------------------------------------------
# Timeline export guards


class TestTimelineGuards:
    def test_nonfinite_samples_dropped(self):
        timeline = RunTimeline()
        timeline.add_value(float("nan"), "packets", 1.0)
        timeline.add_value(1.0, "packets", float("inf"))
        timeline.add_mark(float("nan"), "attack.start")
        assert timeline.rows() == []
        assert timeline.render_ascii() == "(empty timeline)"

    def test_far_future_mark_stays_bounded(self):
        timeline = RunTimeline()
        timeline.add_value(0.0, "packets", 5.0)
        timeline.add_mark(1e9, "attack.start")
        rows = timeline.rows()
        assert len(rows) == 2
        assert rows[-1]["second"] == 1e9
        timeline.to_csv()
        timeline.render_ascii()

    def test_zero_duration_run_renders(self):
        timeline = RunTimeline()
        timeline.add_value(0.0, "packets", 0.0)
        chart = timeline.render_ascii()
        assert "packets" in chart
        csv = timeline.to_csv()
        assert csv.splitlines()[0] == "second,packets,events"

    def test_empty_timeline_exports(self):
        timeline = RunTimeline()
        assert timeline.rows() == []
        assert timeline.to_csv() == "second,events\n"
        assert timeline.render_ascii() == "(empty timeline)"
