"""Batch-dispatch kernel tests: ordering, anchoring, and scalar equivalence.

The batched kernel (bucket-drain dispatch, ``schedule_batch``,
:class:`~repro.sim.packet.PacketBatch` trains, partial-fit queue splits)
must be an *optimisation*, not a semantics change: same seeds, same
packets, same verdicts.  These tests pin that contract.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.botnet.attacks import make_attack
from repro.ids.defense import TokenBucket
from repro.sim import CsmaLan, PacketProbe, SegmentedLan, Simulator
from repro.sim.packet import PacketBatch, TcpFlags
from repro.sim.queue import DropTailQueue
from repro.testbed import AttackPhase, Scenario, Testbed

# ----------------------------------------------------------------------
# Kernel ordering


@settings(max_examples=30, deadline=None)
@given(
    jobs=st.lists(
        st.tuples(
            st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0]),  # coarse grid → buckets
            st.sampled_from([0, 1]),  # priority
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_batch_scheduling_preserves_scalar_order(jobs):
    """schedule_batch executes in exactly the order a scalar loop would.

    Delays are drawn from a coarse grid so many events share a (time,
    priority) bucket and the bucket-drain path is exercised, not just
    the singleton fast path.
    """
    orders = []
    for use_batch in (False, True):
        sim = Simulator()
        order = []
        if use_batch:
            for prio in (0, 1):
                delays = [d for d, p in jobs if p == prio]
                args = [(i,) for i, (d, p) in enumerate(jobs) if p == prio]
                sim.schedule_batch(delays, order.append, args, priority=prio)
        else:
            for prio in (0, 1):
                for i, (d, p) in enumerate(jobs):
                    if p == prio:
                        sim.schedule(d, order.append, i, priority=prio)
        sim.run()
        orders.append(order)
    assert orders[0] == orders[1]
    # Both must equal the analytic total order: (time, priority, seq),
    # where seq follows the priority-0-then-priority-1 insertion above.
    indexed = [(d, p, i) for i, (d, p) in enumerate(jobs)]
    expected = [
        i
        for d, p, i in sorted(
            indexed, key=lambda t: (t[0], t[1], t[1], t[2])
        )
    ]
    assert orders[0] == expected


def test_events_scheduled_during_bucket_run_after_it():
    """Events spawned inside a bucket callback land behind the bucket."""
    sim = Simulator()
    order = []

    def spawner(tag):
        order.append(tag)
        if tag == "first":
            # Same timestamp as the bucket being drained.
            sim.schedule(0.0, order.append, "spawned")

    sim.schedule(1.0, spawner, "first")
    sim.schedule(1.0, spawner, "second")
    sim.run()
    assert order == ["first", "second", "spawned"]


# ----------------------------------------------------------------------
# Anchored periodic scheduling


def test_periodic_ticks_stay_on_exact_multiples_for_10k_ticks():
    """10k anchored ticks land bit-exactly on t0 + k*interval (no drift).

    The drifting form (``schedule(interval, ...)`` from the callback)
    accumulates one ulp every few thousand ticks; the anchored scheduler
    must not.
    """
    sim = Simulator()
    interval = 0.1
    times = []
    handle = sim.schedule_periodic(interval, lambda: times.append(sim.now))
    sim.run(until=1000.0)
    assert handle.ticks == 10_000
    assert len(times) == 10_000
    expected = [(k + 1) * interval for k in range(10_000)]
    assert times == expected  # bit-equality, not approx


def test_periodic_anchor_uses_explicit_t0():
    """An explicit t0 anchors ticks to t0 + k*interval, not to now."""
    sim = Simulator()
    times = []
    sim.schedule(5.0, lambda: None)
    sim.run(until=5.0)
    handle = sim.schedule_periodic(0.25, lambda: times.append(sim.now), t0=5.5)
    sim.run(until=7.0)
    handle.cancel()
    assert times == [5.5 + k * 0.25 for k in range(1, 7)]


# ----------------------------------------------------------------------
# Cancellation ledger


def test_cancel_ledger_is_exact_after_run():
    """Every cancelled-in-heap event is accounted; ledger drains to zero."""
    sim = Simulator()
    ran = []
    events = [sim.schedule(float(i % 7), ran.append, i) for i in range(100)]
    for event in events[::2]:
        event.cancel()
    # Cancelling twice must not double-count the ledger.
    events[0].cancel()
    assert sim._cancelled_in_heap + len(sim._heap) >= 50
    sim.run()
    assert sim._cancelled_in_heap == 0
    assert sorted(ran) == list(range(1, 100, 2))
    assert sim.pending_events == 0


def test_cancel_compaction_keeps_order_and_count():
    """A mid-schedule compaction sweep loses no live events."""
    sim = Simulator()
    ran = []
    live = [sim.schedule(10.0 + i, ran.append, i) for i in range(20)]
    doomed = [sim.schedule(500.0 + i, ran.append, 1000 + i) for i in range(200)]
    for event in doomed:
        event.cancel()
    assert sim.heap_compactions >= 1  # sweep triggered by the ledger
    # The ledger stays exact through sweeps: live events all still pending.
    assert sim.pending_events == len(live)
    sim.run()
    assert sim._cancelled_in_heap == 0
    assert ran == list(range(20))


# ----------------------------------------------------------------------
# Queue and rate-limiter batch semantics


def _syn_batch(n, src=0x0A000001, dst=0x0A000002):
    return PacketBatch.tcp_batch(
        n,
        src_ip=src,
        dst_ip=dst,
        src_port=list(range(1000, 1000 + n)),
        dst_port=80,
        flags=TcpFlags.SYN,
    )


def test_enqueue_batch_partial_fit_splits_at_boundary():
    """A batch that half-fits is split head-accepted/tail-dropped."""
    queue = DropTailQueue(capacity=10)
    assert queue.enqueue_batch(_syn_batch(7)) == 7
    assert queue.enqueue_batch(_syn_batch(7)) == 3  # only 3 slots left
    assert queue.dropped == 4
    assert len(queue) == 10
    assert queue.conservation_error() is None
    # The accepted head keeps scalar order: ports run 1000..1006,1000..1002.
    ports = [queue.dequeue().tcp.src_port for _ in range(10)]
    assert ports == list(range(1000, 1007)) + list(range(1000, 1003))
    assert queue.conservation_error() is None
    assert queue.enqueue_batch(_syn_batch(3)) == 3  # drained queue refills


@settings(max_examples=50, deadline=None)
@given(
    rate=st.floats(min_value=0.5, max_value=100.0),
    burst=st.floats(min_value=1.0, max_value=50.0),
    steps=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2.0),  # inter-arrival gap
            st.integers(min_value=0, max_value=40),  # requested
        ),
        min_size=1,
        max_size=10,
    ),
)
def test_property_token_bucket_take_equals_sequential_allow(rate, burst, steps):
    """``take(now, n)`` grants exactly what n ``allow(now)`` calls would."""
    batched = TokenBucket(rate=rate, burst=burst)
    scalar = TokenBucket(rate=rate, burst=burst)
    now = 0.0
    for gap, requested in steps:
        now += gap
        granted = batched.take(now, requested)
        sequential = sum(1 for _ in range(requested) if scalar.allow(now))
        assert granted == sequential
        assert batched.tokens == pytest.approx(scalar.tokens, abs=1e-9)


# ----------------------------------------------------------------------
# Flood-path equivalence: scalar packets vs batched trains


def _flood_capture(attack_kind, batch, n_nodes=4, pps=2000.0, duration=0.1):
    sim = Simulator()
    lan = CsmaLan(sim)
    victim = lan.add_host("tserver")
    victim.tcp.seed(99)
    victim.tcp.listen(80, on_accept=lambda sock: None)
    probe = lan.add_probe(PacketProbe())
    modules = []
    for i in range(n_nodes):
        node = lan.add_host(f"dev-{i}")
        modules.append(
            make_attack(
                attack_kind, node, sim, victim.address, 80,
                pps, duration, seed=1000 + i, batch=batch,
            )
        )
    for module in modules:
        sim.schedule(0.0, module.start)
    sim.run(until=duration + 1.0)
    return probe.records, sum(m.packets_sent for m in modules)


@pytest.mark.parametrize("attack_kind", ["syn", "udp"])
def test_single_sender_flood_records_bit_identical(attack_kind):
    """One sender, no contention: batched floods are the *same capture* —
    timestamps, seq draws, every header field bit-equal to scalar."""
    scalar_records, scalar_sent = _flood_capture(attack_kind, batch=False, n_nodes=1)
    batch_records, batch_sent = _flood_capture(attack_kind, batch=True, n_nodes=1)
    assert scalar_sent == batch_sent > 0
    assert scalar_records == batch_records


def _frame_population(records):
    """Capture content modulo wire interleaving (timestamps dropped)."""
    return Counter(
        (r.src_ip, r.dst_ip, r.src_port, r.dst_port, r.seq, r.size,
         r.tcp_flags, r.label, r.attack)
        for r in records
    )


@pytest.mark.parametrize("attack_kind", ["syn", "udp"])
def test_contending_flood_population_identical_scalar_vs_batch(attack_kind):
    """Many senders contending for the wire: whole-train service reorders
    frame *interleaving* (as real NIC batching does) but must deliver the
    exact same frame population — every address, port, and seq draw —
    and finish the wire schedule at the same instant."""
    scalar_records, scalar_sent = _flood_capture(attack_kind, batch=False)
    batch_records, batch_sent = _flood_capture(attack_kind, batch=True)
    assert scalar_sent == batch_sent > 0
    assert len(scalar_records) == len(batch_records)
    assert _frame_population(scalar_records) == _frame_population(batch_records)
    assert max(r.timestamp for r in scalar_records) == pytest.approx(
        max(r.timestamp for r in batch_records)
    )


# ----------------------------------------------------------------------
# Testbed-level equivalence across topology/emission modes


def _testbed_capture(batch_floods, devices_per_segment):
    scenario = Scenario(
        n_devices=4,
        seed=7,
        batch_floods=batch_floods,
        devices_per_segment=devices_per_segment,
    )
    testbed = Testbed(scenario).build()
    testbed.infect_all()
    dataset = testbed.capture(
        duration=8.0,
        attack_phases=[
            AttackPhase(start=1.0, kind="syn", duration=3.0, pps_per_bot=100.0)
        ],
    )
    return dataset.records


def test_testbed_capture_identical_across_batch_and_segmentation():
    """Same seed → same labelled traffic, flat/segmented, scalar/batched.

    Every dev↔server flow crosses the backbone exactly once, so the
    backbone probe of a segmented topology observes the same per-flow
    population a flat LAN's promiscuous tap does (leaf hosts draw
    different subnet addresses and timestamps shift by a router hop, so
    the comparison is per-label/attack counts); batched emission on the
    *same* topology must match scalar frame for frame.
    """

    def summary(records):
        return (
            len(records),
            Counter((r.attack, r.label, r.protocol) for r in records),
        )

    baseline = _testbed_capture(batch_floods=False, devices_per_segment=0)
    assert len(baseline) > 100
    # Same flat topology, batched emission: identical frame population.
    batched = _testbed_capture(batch_floods=True, devices_per_segment=0)
    assert _frame_population(batched) == _frame_population(baseline)
    # Hierarchical topology (scalar and batched): same labelled traffic.
    for batch_floods in (False, True):
        got = _testbed_capture(batch_floods, devices_per_segment=2)
        assert summary(got) == summary(baseline), batch_floods


def test_full_experiment_verdicts_identical_scalar_vs_batch():
    """Same seed end to end: batched floods leave the windowed traffic and
    every window-level verdict identical to the scalar kernel.

    Whole-train wire service can shift frame *interleaving* under
    contention (see the contending-flood test above), which nudges
    inter-arrival features by microseconds; per-window ground truth,
    dataset summaries, and window attack verdicts must be unaffected,
    and Table I accuracies must agree to well under a point (RF, whose
    thresholds are interval-robust, is bit-equal in practice).
    """
    from repro.testbed import run_full_experiment

    results = []
    for batch_floods in (False, True):
        scenario = Scenario(n_devices=3, seed=11, batch_floods=batch_floods)
        results.append(
            run_full_experiment(
                scenario, train_duration=20.0, detect_duration=10.0
            )
        )
    scalar, batched = results
    assert scalar.train_summary == batched.train_summary
    assert scalar.detect_summary == batched.detect_summary
    for rep_s, rep_b in zip(scalar.detection, batched.detection):
        # Identical window composition: same packets, same true labels.
        assert [
            (w.window_index, w.n_packets, w.n_malicious_true)
            for w in rep_s.windows
        ] == [
            (w.window_index, w.n_packets, w.n_malicious_true)
            for w in rep_b.windows
        ]
        # Identical window-level verdicts (majority-malicious decision).
        assert [
            w.n_malicious_predicted * 2 >= w.n_packets for w in rep_s.windows
        ] == [
            w.n_malicious_predicted * 2 >= w.n_packets for w in rep_b.windows
        ], rep_s.model_name
    for (name_s, acc_s), (name_b, acc_b) in zip(scalar.table1(), batched.table1()):
        assert name_s == name_b
        assert acc_s == pytest.approx(acc_b, abs=0.5), name_s


# ----------------------------------------------------------------------
# Hierarchical topology forwarding


def test_segmented_lan_routes_leaf_to_backbone_and_leaf_to_leaf():
    """UDP crosses leaf→backbone and leaf→leaf through gateway routers."""
    sim = Simulator()
    lan = SegmentedLan(sim, devices_per_segment=2)
    server = lan.add_host("tserver")  # backbone by name
    devs = [lan.add_host(f"dev-{i}") for i in range(4)]  # two leaf segments
    assert len(lan.segments) == 2
    assert lan.segment_of(devs[0]) is lan.segment_of(devs[1])
    assert lan.segment_of(devs[0]) is not lan.segment_of(devs[2])
    assert lan.segment_of(server) is None

    got = []
    server_sock = server.udp.bind(9000)
    server_sock.on_receive = lambda sock, payload, length, src, sport: got.append(
        ("server", str(src))
    )
    dev_sock = devs[3].udp.bind(9001)
    dev_sock.on_receive = lambda sock, payload, length, src, sport: got.append(
        ("dev-3", str(src))
    )
    # leaf → backbone, and leaf → different leaf (via two routers).
    devs[0].udp.bind(0).send_to(server.address, 9000, length=64)
    devs[1].udp.bind(0).send_to(devs[3].address, 9001, length=64)
    sim.run(until=2.0)
    assert ("server", str(devs[0].address)) in got
    assert ("dev-3", str(devs[1].address)) in got


def test_segmented_lan_backbone_probe_sees_cross_segment_traffic():
    """The backbone tap captures every inter-segment frame exactly once."""
    sim = Simulator()
    lan = SegmentedLan(sim, devices_per_segment=2)
    server = lan.add_host("tserver")
    devs = [lan.add_host(f"dev-{i}") for i in range(2)]
    probe = lan.add_probe(PacketProbe())
    server.udp.bind(9000)
    for _ in range(5):
        devs[0].udp.bind(0).send_to(server.address, 9000, length=100)
    sim.run(until=2.0)
    udp_records = [r for r in probe.records if r.dst_ip == server.address.value]
    assert len(udp_records) == 5
