"""Integration tests for the assembled testbed and experiment flows.

These run the full DDoShield-IoT lifecycle at small scale: build the
Figure 1 topology, infect the fleet, capture labelled traffic, train
models, and run real-time detection.
"""

import pytest

from repro.testbed import (
    AttackPhase,
    Scenario,
    Testbed,
    default_model_specs,
    run_realtime_detection,
    train_models,
)
from repro.testbed.builder import TestbedError as BuilderTimeoutError


@pytest.fixture(scope="module")
def infected_testbed():
    """One shared small testbed, infected once (module-scoped for speed)."""
    scenario = Scenario(n_devices=3, seed=11)
    testbed = Testbed(scenario).build()
    seconds = testbed.infect_all()
    return testbed, seconds


class TestScenario:
    def test_defaults_valid(self):
        scenario = Scenario()
        assert scenario.n_devices >= 1

    def test_invalid_devices_rejected(self):
        with pytest.raises(ValueError):
            Scenario(n_devices=0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            Scenario(window_seconds=0)

    def test_attack_phase_validation(self):
        with pytest.raises(ValueError):
            AttackPhase(start=-1, kind="syn", duration=5, pps_per_bot=10)
        with pytest.raises(ValueError):
            AttackPhase(start=0, kind="syn", duration=0, pps_per_bot=10)

    def test_training_schedule_covers_three_attacks(self):
        schedule = Scenario().training_schedule(60.0)
        assert [p.kind for p in schedule] == ["syn", "ack", "udp"]
        assert all(p.start + p.duration <= 60.0 for p in schedule)

    def test_detection_schedule_rates_lower_than_training(self):
        scenario = Scenario()
        train = scenario.training_schedule(60.0)
        detect = scenario.detection_schedule(30.0)
        assert max(p.pps_per_bot for p in detect) < min(p.pps_per_bot for p in train)


class TestBuild:
    def test_component_inventory_matches_figure1(self, infected_testbed):
        testbed, _ = infected_testbed
        inventory = testbed.component_inventory()
        assert {"http-server", "ftp-server", "rtmp-server", "dns-server", "ntp-server"} <= set(
            inventory["tserver"]
        )
        assert {"cnc", "mirai-loader", "mirai-scanner"} <= set(inventory["attacker"])
        for i in range(3):
            assert "telnet" in inventory[f"dev-{i}"]
            assert "device-profile" in inventory[f"dev-{i}"]
            assert "udp-chatter" in inventory[f"dev-{i}"]

    def test_build_idempotent(self, infected_testbed):
        testbed, _ = infected_testbed
        containers_before = len(testbed.orchestrator.containers)
        testbed.build()
        assert len(testbed.orchestrator.containers) == containers_before


class TestInfection:
    def test_all_devices_infected(self, infected_testbed):
        testbed, seconds = infected_testbed
        assert testbed.bot_count == 3
        assert all(t.infected for t in testbed.telnets)
        assert seconds > 0
        inventory = testbed.component_inventory()
        for i in range(3):
            assert "mirai-bot" in inventory[f"dev-{i}"]

    def test_infection_timeout_raises(self):
        scenario = Scenario(n_devices=1, seed=3)
        testbed = Testbed(scenario).build()
        # Harden the fleet: stop every telnet daemon so the scanner can
        # never crack a device and infection must time out.
        for telnet in testbed.telnets:
            telnet.stop()
        with pytest.raises(BuilderTimeoutError):
            testbed.infect_all(max_time=10.0)


class TestCapture:
    def test_capture_contains_benign_and_malicious(self, infected_testbed):
        testbed, _ = infected_testbed
        phases = [AttackPhase(start=2.0, kind="udp", duration=3.0, pps_per_bot=50)]
        capture = testbed.capture(10.0, phases)
        summary = capture.summary()
        assert summary.benign > 0
        assert summary.malicious > 0
        assert "udp_flood" in summary.by_attack

    def test_capture_without_attacks_is_benign_plus_c2(self, infected_testbed):
        testbed, _ = infected_testbed
        capture = testbed.capture(5.0)
        attacks = set(capture.summary().by_attack)
        assert attacks <= {"c2"}

    def test_timestamps_continue_across_captures(self, infected_testbed):
        testbed, _ = infected_testbed
        first = testbed.capture(3.0)
        second = testbed.capture(3.0)
        assert second.records[0].timestamp > first.records[-1].timestamp - 3.0
        assert second.records[0].timestamp >= first.records[0].timestamp

    def test_rebase_option(self, infected_testbed):
        testbed, _ = infected_testbed
        capture = testbed.capture(3.0, rebase_timestamps=True)
        assert capture.records[0].timestamp < 1.0

    def test_pcap_export(self, infected_testbed, tmp_path):
        from repro.sim.tracing import PcapReader

        testbed, _ = infected_testbed
        path = tmp_path / "phase.pcap"
        capture = testbed.capture(2.0, pcap_path=str(path))
        frames = list(PcapReader(path))
        assert len(frames) == len(capture)


class TestChurn:
    def test_churned_devices_rejoin(self):
        scenario = Scenario(
            n_devices=2, seed=5, churn_interval=3.0, churn_downtime=2.0
        )
        testbed = Testbed(scenario).build()
        testbed.infect_all()
        testbed.capture(20.0)
        # Let any in-flight downtime elapse, then all devices are back.
        testbed.sim.run(until=testbed.sim.now + scenario.churn_downtime + 1.0)
        attached = {d.mac for d in testbed.lan.channel._devices}
        for dev in testbed.devices:
            assert dev.node.interfaces[0].device.mac in attached


class TestExperimentFlows:
    @pytest.fixture(scope="class")
    def small_run(self):
        scenario = Scenario(n_devices=3, seed=21)
        testbed = Testbed(scenario).build()
        testbed.infect_all()
        train = testbed.capture(30.0, scenario.training_schedule(30.0, pps_per_bot=250))
        detect = testbed.capture(15.0, scenario.detection_schedule(15.0, pps_per_bot=60))
        return scenario, train, detect

    def test_train_models_reports_high_metrics(self, small_run):
        scenario, train, _ = small_run
        trained = train_models(train, seed=scenario.seed)
        assert {t.name for t in trained} == {"RF", "K-Means", "CNN"}
        for item in trained:
            assert item.train_report.accuracy > 0.9
            assert item.size_kb > 0
            assert item.fit_seconds > 0

    def test_realtime_reports_have_sustainability(self, small_run):
        scenario, train, detect = small_run
        trained = train_models(train, seed=scenario.seed)
        reports = run_realtime_detection(detect, trained)
        assert len(reports) == 3
        for report in reports:
            assert report.n_windows > 10
            assert report.sustainability is not None
            assert report.sustainability.cpu_percent > 0

    def test_kmeans_model_is_lightest(self, small_run):
        scenario, train, _ = small_run
        trained = {t.name: t for t in train_models(train, seed=scenario.seed)}
        assert trained["K-Means"].size_kb < trained["RF"].size_kb / 5
        assert trained["K-Means"].size_kb < trained["CNN"].size_kb / 5

    def test_single_class_capture_rejected(self, small_run):
        scenario, train, _ = small_run
        benign_only = train.filter(lambda r: r.label == 0)
        with pytest.raises(ValueError):
            train_models(benign_only, seed=scenario.seed)

    def test_specs_have_distinct_feature_views(self):
        specs = {s.name: s for s in default_model_specs()}
        assert specs["RF"].stat_set == "paper"
        assert not specs["RF"].scale
        assert specs["K-Means"].stat_set == "normalized"
        assert specs["K-Means"].scale
        assert specs["CNN"].include_details
