"""Tests for victim-impact monitoring and IDS-driven mitigation."""

import numpy as np
import pytest

from repro.ids import BlocklistFilter, MitigatingIds, RealTimeIds, TokenBucket
from repro.sim.packet import PROTO_TCP, PROTO_UDP, TcpFlags
from repro.sim.tracing import PacketRecord
from repro.testbed import AttackPhase, Scenario, Testbed, attach_victim_monitor
from repro.testbed.impact import ImpactSample, ImpactSeries, VictimMonitor


@pytest.fixture(scope="module")
def testbed():
    scenario = Scenario(n_devices=3, seed=41)
    built = Testbed(scenario).build()
    built.infect_all()
    return built


class TestTokenBucket:
    def test_allows_within_rate(self):
        bucket = TokenBucket(rate=10, burst=10, tokens=10, last_time=0.0)
        assert all(bucket.allow(0.0) for _ in range(10))
        assert not bucket.allow(0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=10, burst=10, tokens=0, last_time=0.0)
        assert not bucket.allow(0.0)
        assert bucket.allow(1.0)  # 10 tokens refilled

    def test_burst_caps_refill(self):
        bucket = TokenBucket(rate=100, burst=5, tokens=0, last_time=0.0)
        bucket.allow(100.0)
        assert bucket.tokens <= 5


class TestImpactSeries:
    def sample(self, t, goodput=100.0, half_open=0):
        return ImpactSample(t, 10, 1000, goodput, half_open, 0, 0, 0)

    def test_between(self):
        series = ImpactSeries([self.sample(t) for t in range(10)])
        assert len(series.between(2, 5)) == 3

    def test_mean_goodput(self):
        series = ImpactSeries([self.sample(0, 100.0), self.sample(1, 300.0)])
        assert series.mean_goodput() == 200.0
        assert series.mean_goodput(1, 2) == 300.0

    def test_peak_half_open(self):
        series = ImpactSeries([self.sample(0, half_open=3), self.sample(1, half_open=9)])
        assert series.peak_half_open() == 9

    def test_empty(self):
        assert ImpactSeries().mean_goodput() == 0.0
        assert ImpactSeries().peak_half_open() == 0


class TestVictimMonitor:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            VictimMonitor(interval=0)

    def test_samples_accumulate(self, testbed):
        monitor = attach_victim_monitor(testbed.tserver)
        testbed.sim.run(until=testbed.sim.now + 10.0)
        monitor.stop()
        assert len(monitor.series.samples) >= 9
        assert all(s.rx_packets >= 0 for s in monitor.series.samples)

    def test_flood_visible_in_rx_rate(self, testbed):
        monitor = attach_victim_monitor(testbed.tserver)
        start = testbed.sim.now
        testbed.sim.run(until=start + 5.0)
        quiet = monitor.series.mean_goodput(start, start + 5.0)
        testbed.cnc.launch_attack(
            "udp", testbed.tserver.node.address, 80, duration=5.0, pps=150
        )
        testbed.sim.run(until=start + 11.0)
        monitor.stop()
        quiet_rx = np.mean([s.rx_packets for s in monitor.series.between(start, start + 5)])
        flood_rx = np.mean([s.rx_packets for s in monitor.series.between(start + 5, start + 10)])
        assert flood_rx > quiet_rx * 2

    def test_syn_flood_fills_backlog_sample(self, testbed):
        monitor = attach_victim_monitor(testbed.tserver)
        start = testbed.sim.now
        testbed.cnc.launch_attack(
            "syn", testbed.tserver.node.address, 80, duration=4.0, pps=150
        )
        testbed.sim.run(until=start + 6.0)
        monitor.stop()
        assert monitor.series.peak_half_open() > 0
        assert monitor.series.samples[-1].syn_dropped > 0


def record(ts, src, label=1, proto=PROTO_UDP, dport=9999):
    return PacketRecord(ts, src, 99, proto, 40000, dport, 60, 0, 0, label)


class FlagEverything:
    """Toy detector that flags every packet (module-level: picklable)."""

    def predict(self, X):
        return np.ones(len(X), dtype=int)


class TestBlocklistFilter:
    def make_filter(self, testbed, **kwargs):
        filt = BlocklistFilter(testbed.tserver.node, **kwargs).install()
        yield_filter = filt
        return yield_filter

    def test_install_uninstall_roundtrip(self, testbed):
        node = testbed.tserver.node
        original = node.receive
        filt = BlocklistFilter(node).install()
        assert node.receive != original
        filt.uninstall()
        assert node.receive == original  # class method restored

    def test_double_install_is_noop(self, testbed):
        node = testbed.tserver.node
        filt = BlocklistFilter(node).install()
        receive_once = node.receive
        filt.install()
        assert node.receive is receive_once
        filt.uninstall()

    def test_verdict_blocks_dominant_sources(self, testbed):
        filt = BlocklistFilter(testbed.tserver.node)
        records = [record(0.1 * i, src=111) for i in range(20)]
        records += [record(0.1 * i, src=222) for i in range(3)]  # below threshold
        predictions = np.ones(len(records), dtype=int)
        blocked = filt.apply_window_verdict(records, predictions, min_flagged=10)
        assert blocked == 1
        assert 111 in filt.blocked_until
        assert 222 not in filt.blocked_until

    def test_verdict_never_blocks_self(self, testbed):
        filt = BlocklistFilter(testbed.tserver.node)
        self_ip = testbed.tserver.node.address.value
        records = [record(0.1 * i, src=self_ip) for i in range(20)]
        filt.apply_window_verdict(records, np.ones(20, dtype=int))
        assert self_ip not in filt.blocked_until

    def test_misaligned_verdict_rejected(self, testbed):
        filt = BlocklistFilter(testbed.tserver.node)
        with pytest.raises(ValueError):
            filt.apply_window_verdict([record(0, 1)], np.ones(2, dtype=int))

    def test_blocks_expire(self, testbed):
        filt = BlocklistFilter(testbed.tserver.node, block_seconds=5.0)
        now = testbed.sim.now
        filt.blocked_until[12345] = now + 5.0
        assert filt.active_blocks == 1
        testbed.sim.run(until=now + 6.0)
        assert filt.active_blocks == 0

    def test_filter_drops_blocked_traffic_live(self, testbed):
        filt = BlocklistFilter(testbed.tserver.node, block_seconds=60.0).install()
        bot_ips = [d.node.address.value for d in testbed.devices]
        now = testbed.sim.now
        for ip in bot_ips:
            filt.blocked_until[ip] = now + 60.0
        testbed.cnc.launch_attack(
            "udp", testbed.tserver.node.address, 80, duration=3.0, pps=100
        )
        unreachable_before = testbed.tserver.node.udp.unreachable
        testbed.sim.run(until=now + 5.0)
        filt.uninstall()
        assert filt.dropped_by_blocklist > 200
        # the floods never reached the UDP stack
        assert testbed.tserver.node.udp.unreachable == unreachable_before

    def test_syn_rate_limit_caps_spoofed_floods(self, testbed):
        filt = BlocklistFilter(
            testbed.tserver.node, syn_rate_limit=20.0, syn_burst=20.0
        ).install()
        now = testbed.sim.now
        testbed.cnc.launch_attack(
            "syn", testbed.tserver.node.address, 80, duration=3.0, pps=100
        )
        testbed.sim.run(until=now + 5.0)
        filt.uninstall()
        # spoofed sources rotate, but the per-port bucket still bites
        assert filt.dropped_by_rate_limit > 100


class TestMitigatingIds:
    def test_closes_the_detect_mitigate_loop(self, testbed):
        """An all-malicious toy model should trigger blocks on flagged windows."""
        filt = BlocklistFilter(testbed.tserver.node, block_seconds=30.0)
        ids = RealTimeIds(FlagEverything(), "flagger")
        mitigating = MitigatingIds(ids, filt)
        records = [record(i * 0.05, src=777 + (i % 2)) for i in range(60)]
        ids.process(records)
        assert mitigating.blocks_issued >= 1
        assert filt.blocked_until
