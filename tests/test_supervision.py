"""Tests for container supervision: crashes, restart policies, health probes."""

import pytest

from repro.containers import (
    ContainerState,
    Image,
    Orchestrator,
    Process,
    RestartPolicy,
)
from repro.containers.container import ContainerError
from repro.sim import CsmaLan, Simulator


class PingProcess(Process):
    """Test process: sends one UDP datagram per second to a fixed peer."""

    name = "ping"

    def __init__(self, peer_address, port=7000):
        super().__init__()
        self.peer_address = peer_address
        self.port = port
        self.sent = 0
        self._timer = None

    def on_start(self):
        self._sock = self.node.udp.bind(0)
        self._tick()

    def _tick(self):
        self._sock.send_to(self.peer_address, self.port, b"ping")
        self.sent += 1
        self._timer = self.sim.schedule(1.0, self._tick)

    def on_stop(self):
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None


@pytest.fixture()
def env():
    sim = Simulator()
    lan = CsmaLan(sim)
    return sim, lan, Orchestrator(sim, lan, seed=4)


class TestRestartPolicy:
    def test_mode_validated(self):
        with pytest.raises(ValueError):
            RestartPolicy(mode="sometimes")

    def test_backoff_doubles_up_to_cap(self):
        policy = RestartPolicy(backoff_base=1.0, backoff_cap=8.0, jitter=0.0)
        import random
        rng = random.Random(0)
        delays = [policy.backoff(streak, rng) for streak in range(5)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_jitter_is_bounded_and_seeded(self):
        policy = RestartPolicy(backoff_base=2.0, jitter=0.25)
        import random
        a = [policy.backoff(0, random.Random(9)) for _ in range(3)]
        b = [policy.backoff(0, random.Random(9)) for _ in range(3)]
        assert a == b  # same seed, same jitter
        assert all(1.5 <= d <= 2.5 for d in a)


class TestKill:
    def test_kill_fails_container_and_detaches_tap(self, env):
        sim, lan, orch = env
        container = orch.run("victim", Image("test/app"))
        device = container.node.interfaces[0].device
        assert device.attached
        orch.kill("victim")
        assert container.state is ContainerState.FAILED
        assert not device.attached
        assert [e.action for e in orch.events] == ["kill"]

    def test_kill_requires_running(self, env):
        sim, lan, orch = env
        container = orch.run("victim", Image("test/app"))
        container.stop()
        with pytest.raises(ContainerError):
            container.kill()

    def test_kill_stops_processes(self, env):
        sim, lan, orch = env
        target = orch.run("peer", Image("test/peer"))
        container = orch.run("victim", Image("test/app"))
        proc = container.exec(PingProcess(target.node.address))
        sim.run(until=2.5)
        assert proc.running and proc.sent >= 2
        orch.kill("victim")
        assert not proc.running


class TestRestart:
    def test_on_failure_restart_resumes_traffic(self, env):
        sim, lan, orch = env
        target = orch.run("peer", Image("test/peer"))
        inbox = []
        sock = target.node.udp.bind(7000)
        sock.on_receive = lambda *args: inbox.append(sim.now)
        container = orch.run("victim", Image("test/app"))
        proc = container.exec(PingProcess(target.node.address))
        orch.supervise("victim", RestartPolicy(mode="on-failure", jitter=0.0))
        sim.schedule(5.0, orch.kill, "victim")
        sim.run(until=20.0)
        assert container.state is ContainerState.RUNNING
        assert container.restart_count == 1
        assert orch.restarts_of("victim") == 1
        assert container.node.interfaces[0].device.attached
        assert proc.running
        # Traffic flowed before the kill, paused, and resumed after restart.
        assert [t for t in inbox if t < 5.0]
        assert not [t for t in inbox if 5.0 < t < 6.0]  # backoff gap
        assert [t for t in inbox if t > 6.0]
        actions = [e.action for e in orch.events]
        assert actions == ["kill", "exit", "backoff", "restart"]

    def test_no_policy_never_restarts(self, env):
        sim, lan, orch = env
        container = orch.run("victim", Image("test/app"))
        orch.supervise("victim", RestartPolicy(mode="no"))
        orch.kill("victim")
        sim.run(until=30.0)
        assert container.state is ContainerState.FAILED
        assert container.restart_count == 0

    def test_on_failure_ignores_clean_stop(self, env):
        sim, lan, orch = env
        container = orch.run("victim", Image("test/app"))
        orch.supervise("victim", RestartPolicy(mode="on-failure"))
        container.stop()
        sim.run(until=30.0)
        assert container.state is ContainerState.STOPPED

    def test_always_restarts_clean_stop(self, env):
        sim, lan, orch = env
        container = orch.run("victim", Image("test/app"))
        orch.supervise("victim", RestartPolicy(mode="always", jitter=0.0))
        container.stop()
        sim.run(until=30.0)
        assert container.state is ContainerState.RUNNING
        assert container.restart_count == 1

    def test_circuit_breaker_gives_up(self, env):
        sim, lan, orch = env
        container = orch.run("victim", Image("test/app"))
        orch.supervise(
            "victim",
            RestartPolicy(
                mode="on-failure", max_restarts=3, jitter=0.0, reset_after=1000.0
            ),
        )

        def crash_again():
            if container.state is ContainerState.RUNNING:
                orch.kill("victim")
            if not any(e.action == "giveup" for e in orch.events):
                sim.schedule(0.5, crash_again)

        orch.kill("victim")
        sim.schedule(0.5, crash_again)
        sim.run(until=500.0)
        assert container.state is ContainerState.FAILED
        assert container.restart_count == 3
        assert [e.action for e in orch.events if e.action == "giveup"]
        # Backoff delays doubled on each consecutive attempt.
        delays = [
            float(e.detail.split("restart in ")[1].rstrip("s"))
            for e in orch.events
            if e.action == "backoff"
        ]
        assert delays == pytest.approx([1.0, 2.0, 4.0])

    def test_healthy_stretch_closes_circuit_breaker(self, env):
        sim, lan, orch = env
        container = orch.run("victim", Image("test/app"))
        orch.supervise(
            "victim",
            RestartPolicy(mode="on-failure", jitter=0.0, reset_after=5.0),
        )
        orch.kill("victim")
        sim.run(until=10.0)  # restart at ~1s, then > 5s healthy uptime
        assert container.state is ContainerState.RUNNING
        orch.kill("victim")
        sim.run(until=20.0)
        # Streak was reset, so the second crash backs off from the base again.
        delays = [
            float(e.detail.split("restart in ")[1].rstrip("s"))
            for e in orch.events
            if e.action == "backoff"
        ]
        assert delays == pytest.approx([1.0, 1.0])

    def test_unsupervise_cancels_pending_restart(self, env):
        sim, lan, orch = env
        container = orch.run("victim", Image("test/app"))
        orch.supervise("victim", RestartPolicy(mode="on-failure"))
        orch.kill("victim")
        orch.unsupervise("victim")
        sim.run(until=30.0)
        assert container.state is ContainerState.FAILED

    def test_remove_while_supervised(self, env):
        sim, lan, orch = env
        orch.run("victim", Image("test/app"))
        orch.supervise("victim", RestartPolicy(mode="on-failure"))
        orch.remove("victim")
        sim.run(until=10.0)
        assert "victim" not in orch.containers


class TestHealthProbe:
    def test_probe_kills_unhealthy_container(self, env):
        sim, lan, orch = env
        container = orch.run("victim", Image("test/app"))
        healthy = [True]
        orch.add_health_probe("victim", interval=1.0, check=lambda c: healthy[0])
        sim.schedule(3.5, healthy.__setitem__, 0, False)
        sim.run(until=6.0)
        assert container.state is ContainerState.FAILED
        # The probe kills the container directly, so the trace is the
        # unhealthy verdict followed by the failed exit.
        assert [e.action for e in orch.events] == ["unhealthy", "exit"]

    def test_probe_plus_policy_revives(self, env):
        sim, lan, orch = env
        container = orch.run("victim", Image("test/app"))
        orch.supervise("victim", RestartPolicy(mode="on-failure", jitter=0.0))
        healthy = [True]
        orch.add_health_probe("victim", interval=1.0, check=lambda c: healthy[0])
        sim.schedule(2.5, healthy.__setitem__, 0, False)
        sim.schedule(3.5, healthy.__setitem__, 0, True)
        sim.run(until=10.0)
        assert container.state is ContainerState.RUNNING
        assert container.restart_count == 1

    def test_probe_interval_validated(self, env):
        sim, lan, orch = env
        orch.run("victim", Image("test/app"))
        with pytest.raises(ValueError):
            orch.add_health_probe("victim", interval=0.0)

    def test_default_check_uses_is_healthy(self, env):
        sim, lan, orch = env
        container = orch.run("victim", Image("test/app"))
        orch.add_health_probe("victim", interval=1.0)
        sim.run(until=3.0)
        assert container.state is ContainerState.RUNNING  # healthy: no probes fired it


class TestRestartMechanics:
    def test_restart_rejected_while_running(self, env):
        sim, lan, orch = env
        container = orch.run("victim", Image("test/app"))
        with pytest.raises(ContainerError):
            container.restart()

    def test_restart_restarts_exec_injected_processes(self, env):
        sim, lan, orch = env
        target = orch.run("peer", Image("test/peer"))
        container = orch.run("victim", Image("test/app"))
        proc = container.exec(PingProcess(target.node.address))
        sim.run(until=1.5)
        container.kill()
        assert not proc.running
        orch.bridge.reconnect(container.node)
        container.restart()
        assert proc.running
        assert container.state is ContainerState.RUNNING
