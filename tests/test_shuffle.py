"""Bucket-shuffle race detector tests (``Simulator(shuffle_buckets=…)``).

The kernel claims equal-``(time, priority)`` bucket mates commute
(ORD002's contract).  The shuffle sanitizer *tests* that claim at
runtime: a deterministic permutation of every same-bucket drain must
leave all observable results bit-identical.  These tests pin

* the mechanism — shuffling really permutes dispatch, deterministically
  per seed, and a deliberately order-dependent workload is caught;
* the contract — kernel state hashes and full-experiment verdicts are
  bit-identical across shuffle seeds.
"""

import pytest

from repro.analysis import shuffle_seed_from_env
from repro.sim import Simulator
from repro.testbed import Scenario, run_full_experiment


def _bucket_order(shuffle_buckets, tags=16):
    """Dispatch order of one 16-event bucket (all at t=1, priority 0)."""
    sim = Simulator(shuffle_buckets=shuffle_buckets)
    order = []
    for i in range(tags):
        sim.schedule(1.0, order.append, i)
    sim.run()
    return order


class TestShuffleMechanism:
    def test_unshuffled_bucket_runs_in_schedule_order(self):
        assert _bucket_order(None) == list(range(16))

    def test_shuffle_permutes_bucket_deterministically(self):
        first = _bucket_order(shuffle_buckets=1)
        assert sorted(first) == list(range(16))  # nothing lost or duplicated
        assert first != list(range(16))  # 1-in-16! chance if broken
        assert _bucket_order(shuffle_buckets=1) == first  # same seed, same order
        assert _bucket_order(shuffle_buckets=2) != first  # new seed, new order

    def test_env_seed_arms_the_shuffler(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHUFFLE", "7")
        assert Simulator().shuffle_seed == 7
        assert _bucket_order(None) != list(range(16))
        monkeypatch.setenv("REPRO_SHUFFLE", "off")
        assert Simulator().shuffle_seed is None

    def test_shuffle_seed_env_parsing(self, monkeypatch):
        for raw, expected in [
            ("", None), ("0", None), ("off", None), ("FALSE", None),
            ("no", None), ("7", 7), ("0x10", 16), ("  3 ", 3),
        ]:
            monkeypatch.setenv("REPRO_SHUFFLE", raw)
            assert shuffle_seed_from_env() == expected, raw
        monkeypatch.setenv("REPRO_SHUFFLE", "garbage")
        with pytest.raises(ValueError):
            shuffle_seed_from_env()

    def test_order_dependent_workload_is_caught(self):
        """The detector's point: a last-writer-wins race that schedule
        order happens to hide becomes a visible divergence."""

        def last_writer(shuffle_buckets):
            sim = Simulator(shuffle_buckets=shuffle_buckets)
            state = {"winner": None}
            for tag in range(8):
                sim.schedule(1.0, state.__setitem__, "winner", tag)
            sim.run()
            return state["winner"]

        assert last_writer(None) == 7  # schedule order: last scheduled wins
        winners = {last_writer(seed) for seed in range(1, 6)}
        assert winners != {7}  # some permutation exposes the race


class TestShuffleContract:
    def test_state_hash_identical_for_commuting_bucket(self):
        """Counter-increment bucket mates commute: every shuffle seed
        must end on the same kernel state hash and counter value."""

        def run(shuffle_buckets):
            sim = Simulator(shuffle_buckets=shuffle_buckets)
            state = {"count": 0}

            def bump(k):
                state["count"] += k
                sim.schedule(0.5, lambda: None)  # pending tail state

            for k in range(10):
                sim.schedule(1.0, bump, k)
            sim.run(until=1.2)
            return state["count"], sim.state_hash()

        baseline = run(None)
        for seed in (1, 2, 3):
            assert run(seed) == baseline

    def test_full_experiment_bit_identical_across_shuffle_seeds(self, monkeypatch):
        """Acceptance: one small full experiment, >= 3 shuffle seeds,
        bit-identical window verdicts and result fingerprint."""
        results = {}
        for seed in (None, 1, 2, 3):
            if seed is None:
                monkeypatch.delenv("REPRO_SHUFFLE", raising=False)
            else:
                monkeypatch.setenv("REPRO_SHUFFLE", str(seed))
            results[seed] = run_full_experiment(
                Scenario(n_devices=3, seed=11),
                train_duration=20.0,
                detect_duration=10.0,
            )
        baseline = results[None]
        verdicts = {
            report.model_name: [
                (w.window_index, w.n_packets, w.n_malicious_true,
                 w.n_malicious_predicted, w.status)
                for w in report.windows
            ]
            for report in baseline.detection
        }
        assert any(len(v) > 0 for v in verdicts.values())
        for seed in (1, 2, 3):
            result = results[seed]
            assert result.fingerprint() == baseline.fingerprint(), seed
            for report in result.detection:
                assert verdicts[report.model_name] == [
                    (w.window_index, w.n_packets, w.n_malicious_true,
                     w.n_malicious_predicted, w.status)
                    for w in report.windows
                ], (seed, report.model_name)
            assert result.table1() == baseline.table1(), seed
