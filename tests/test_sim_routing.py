"""Tests for multi-LAN topologies: routers, gateways, TTL."""

import pytest

from repro.sim import CsmaLan, PacketProbe, Simulator
from repro.sim.topology import Router, set_default_gateway


@pytest.fixture()
def two_lans():
    sim = Simulator()
    iot = CsmaLan(sim, subnet="10.0.0.0", prefix_len=24)
    servers = CsmaLan(sim, subnet="10.0.1.0", prefix_len=24)
    router = Router(sim, "gw")
    router.join(iot)
    router.join(servers)
    return sim, iot, servers, router


def test_router_addresses_per_lan(two_lans):
    sim, iot, servers, router = two_lans
    assert str(router.address_on(iot)).startswith("10.0.0.")
    assert str(router.address_on(servers)).startswith("10.0.1.")
    with pytest.raises(ValueError):
        router.address_on(CsmaLan(sim, subnet="10.0.9.0"))


def test_udp_crosses_lans_via_gateway(two_lans):
    sim, iot, servers, router = two_lans
    device = iot.add_host("device")
    server = servers.add_host("server")
    set_default_gateway(iot, router)
    set_default_gateway(servers, router)
    inbox = []
    sock = server.udp.bind(5000)
    sock.on_receive = lambda s, p, n, src, sp: inbox.append((p, str(src)))
    device.udp.bind(0).send_to(server.address, 5000, b"cross-lan")
    sim.run(until=1.0)
    assert inbox == [(b"cross-lan", str(device.address))]
    assert router.node.packets_forwarded == 1


def test_tcp_connection_across_router(two_lans):
    sim, iot, servers, router = two_lans
    device = iot.add_host("device")
    server = servers.add_host("server")
    set_default_gateway(iot, router)
    set_default_gateway(servers, router)
    received = []
    server.tcp.listen(80, lambda s: setattr(
        s, "on_data", lambda ss, p, n, a: received.append(n)))
    sock = device.tcp.socket()
    sock.connect(server.address, 80, lambda s: s.send(length=30_000))
    sim.run(until=10.0)
    assert sum(received) == 30_000
    assert router.node.packets_forwarded > 40  # data + acks both ways


def test_ttl_decremented_in_transit(two_lans):
    sim, iot, servers, router = two_lans
    device = iot.add_host("device")
    server = servers.add_host("server")
    set_default_gateway(iot, router)
    set_default_gateway(servers, router)
    probe = PacketProbe()
    servers.add_probe(probe)
    server.udp.bind(5000)
    device.udp.bind(0).send_to(server.address, 5000, b"x")
    sim.run(until=1.0)
    # default TTL is 64; one hop leaves 63 on the server LAN
    from repro.sim.packet import PROTO_UDP

    assert probe.count == 1


def test_ttl_expiry_drops_packet(two_lans):
    sim, iot, servers, router = two_lans
    device = iot.add_host("device")
    server = servers.add_host("server")
    set_default_gateway(iot, router)
    inbox = []
    sock = server.udp.bind(5000)
    sock.on_receive = lambda *a: inbox.append(1)
    from repro.sim.packet import Ipv4Header, Packet, PROTO_UDP, UdpHeader

    doomed = Packet(
        ip=Ipv4Header(src=device.address, dst=server.address, protocol=PROTO_UDP, ttl=1),
        udp=UdpHeader(src_port=1, dst_port=5000),
        payload=b"x",
    )
    device.send_ipv4(doomed)
    sim.run(until=1.0)
    assert inbox == []
    assert router.node.ttl_expired == 1


def test_host_does_not_forward(two_lans):
    """A non-router host silently drops transit packets."""
    sim, iot, servers, router = two_lans
    device = iot.add_host("device")
    bystander = iot.add_host("bystander")
    server = servers.add_host("server")
    device.default_gateway = bystander.address  # misconfigured gateway
    inbox = []
    sock = server.udp.bind(5000)
    sock.on_receive = lambda *a: inbox.append(1)
    device.udp.bind(0).send_to(server.address, 5000, b"x")
    sim.run(until=1.0)
    assert inbox == []
    assert bystander.packets_forwarded == 0


def test_cross_lan_flood_traverses_gateway(two_lans):
    """A bot on the IoT LAN can flood a server on the other segment."""
    sim, iot, servers, router = two_lans
    bot = iot.add_host("bot")
    victim = servers.add_host("victim")
    set_default_gateway(iot, router)
    set_default_gateway(servers, router)
    from repro.botnet import UdpFlood

    probe = PacketProbe()
    servers.add_probe(probe)
    attack = UdpFlood(bot, sim, victim.address, 80, pps=100, duration=2.0, seed=1)
    attack.start()
    sim.run(until=5.0)
    floods = [r for r in probe.records if r.attack == "udp_flood"]
    assert len(floods) == pytest.approx(200, rel=0.05)
    assert router.node.packets_forwarded >= len(floods)
