"""Tests for the benign traffic applications: HTTP, FTP, RTMP, devices."""

import pytest

from repro.apps import (
    DeviceProfile,
    FtpClient,
    FtpServer,
    HttpClient,
    HttpServer,
    RtmpClient,
    RtmpServer,
    TrafficMix,
)
from repro.containers import Image, Orchestrator
from repro.sim import CsmaLan, PacketProbe, Simulator


@pytest.fixture()
def env():
    sim = Simulator()
    lan = CsmaLan(sim)
    orch = Orchestrator(sim, lan)
    tserver = orch.run("tserver", Image("tserver"))
    dev = orch.run("dev", Image("dev"))
    return sim, lan, orch, tserver, dev


class TestHttp:
    def test_single_fetch_roundtrip(self, env):
        sim, _, _, tserver, dev = env
        server = tserver.exec(HttpServer(seed=1))
        client = dev.exec(
            HttpClient(tserver.node.address, server.page_names(), mean_interval=1e9)
        )
        page = server.page_names()[0]
        client.fetch_once(page)
        sim.run(until=10.0)
        assert client.completed == 1
        assert server.requests_served == 1
        # header + body bytes arrive
        assert client.bytes_fetched > server.pages[page]

    def test_page_sizes_deterministic_by_seed(self):
        assert HttpServer(seed=5).pages == HttpServer(seed=5).pages
        assert HttpServer(seed=5).pages != HttpServer(seed=6).pages

    def test_unknown_page_404(self, env):
        sim, _, _, tserver, dev = env
        server = tserver.exec(HttpServer())
        client = dev.exec(
            HttpClient(tserver.node.address, ["/missing.html"], mean_interval=1e9)
        )
        client.fetch_once("/missing.html")
        sim.run(until=10.0)
        assert server.not_found == 1
        assert client.completed == 1  # the 404 response still completes

    def test_periodic_fetching(self, env):
        sim, _, _, tserver, dev = env
        server = tserver.exec(HttpServer())
        client = dev.exec(
            HttpClient(tserver.node.address, server.page_names(), mean_interval=2.0, seed=3)
        )
        sim.run(until=30.0)
        assert client.completed >= 5

    def test_client_stop_cancels_timer(self, env):
        sim, _, _, tserver, dev = env
        server = tserver.exec(HttpServer())
        client = dev.exec(
            HttpClient(tserver.node.address, server.page_names(), mean_interval=1.0)
        )
        client.stop()
        sim.run(until=20.0)
        assert client.completed == 0

    def test_server_refused_after_stop(self, env):
        sim, _, _, tserver, dev = env
        server = tserver.exec(HttpServer())
        server.stop()
        client = dev.exec(
            HttpClient(tserver.node.address, ["/page0.html"], mean_interval=1e9)
        )
        client.fetch_once()
        sim.run(until=10.0)
        assert client.completed == 0
        assert client.failed == 1  # RST from closed port


class TestFtp:
    def test_full_session_transfers_file(self, env):
        sim, _, _, tserver, dev = env
        server = tserver.exec(FtpServer(seed=2))
        client = dev.exec(
            FtpClient(tserver.node.address, server.file_names(), mean_interval=1e9)
        )
        filename = server.file_names()[0]
        client.download_once(filename)
        sim.run(until=60.0)
        assert client.downloads_completed == 1
        assert server.transfers_completed == 1
        assert client.bytes_downloaded == server.files[filename]

    def test_bad_password_rejected(self, env):
        sim, _, _, tserver, dev = env
        server = tserver.exec(FtpServer())
        client = dev.exec(
            FtpClient(
                tserver.node.address,
                server.file_names(),
                password="wrong",
                mean_interval=1e9,
            )
        )
        client.download_once()
        sim.run(until=30.0)
        assert client.downloads_completed == 0
        assert client.failed == 1
        assert server.auth_failures == 1

    def test_missing_file_550(self, env):
        sim, _, _, tserver, dev = env
        server = tserver.exec(FtpServer())
        client = dev.exec(
            FtpClient(tserver.node.address, ["no-such-file.bin"], mean_interval=1e9)
        )
        client.download_once()
        sim.run(until=30.0)
        assert client.failed == 1

    def test_retr_requires_login(self, env):
        sim, _, _, tserver, dev = env
        server = tserver.exec(FtpServer())
        # Drive the control channel manually, skipping auth.
        responses = []
        sock = dev.node.tcp.socket()

        def on_data(s, payload, length, app_data):
            responses.append(payload.decode()[:3])
            if payload.startswith(b"220"):
                s.send(b"RETR firmware-0.bin\r\n")

        sock.on_data = on_data
        sock.connect(tserver.node.address, 21)
        sim.run(until=10.0)
        assert "530" in responses

    def test_unknown_command_502(self, env):
        sim, _, _, tserver, dev = env
        tserver.exec(FtpServer())
        responses = []
        sock = dev.node.tcp.socket()

        def on_data(s, payload, length, app_data):
            responses.append(payload.decode()[:3])
            if payload.startswith(b"220"):
                s.send(b"NOOP\r\n")

        sock.on_data = on_data
        sock.connect(tserver.node.address, 21)
        sim.run(until=10.0)
        assert "502" in responses


class TestRtmp:
    def test_stream_delivers_bitrate(self, env):
        sim, _, _, tserver, dev = env
        server = tserver.exec(RtmpServer(bitrate_bps=400_000, chunk_interval=0.1))
        client = dev.exec(RtmpClient(tserver.node.address, mean_interval=1e9))
        client.play_once(duration=5.0)
        sim.run(until=30.0)
        assert client.sessions_completed == 1
        assert server.sessions_started == 1
        expected = 400_000 / 8 * 5.0
        assert client.bytes_streamed == pytest.approx(expected, rel=0.1)

    def test_chunk_bytes(self):
        server = RtmpServer(bitrate_bps=800_000, chunk_interval=0.1)
        assert server.chunk_bytes == 10_000

    def test_bad_command_closed(self, env):
        sim, _, _, tserver, dev = env
        tserver.exec(RtmpServer())
        closed = []
        sock = dev.node.tcp.socket()
        sock.on_close = lambda s: closed.append(1)
        sock.connect(tserver.node.address, 1935, lambda s: s.send(b"publish x\r\n"))
        sim.run(until=10.0)
        assert closed

    def test_server_stop_ends_sessions(self, env):
        sim, _, _, tserver, dev = env
        server = tserver.exec(RtmpServer(chunk_interval=0.1))
        client = dev.exec(RtmpClient(tserver.node.address, mean_interval=1e9))
        client.play_once(duration=60.0)
        sim.run(until=2.0)
        streamed_before = client.bytes_streamed
        assert streamed_before > 0
        server.stop()
        sim.run(until=10.0)
        # no further chunks after server stop (allow one in-flight chunk)
        assert client.bytes_streamed <= streamed_before + server.chunk_bytes


class TestDeviceProfile:
    def test_mixes_all_protocols(self, env):
        sim, _, _, tserver, dev = env
        http = tserver.exec(HttpServer())
        ftp = tserver.exec(FtpServer())
        tserver.exec(RtmpServer(bitrate_bps=100_000))
        profile = dev.exec(
            DeviceProfile(
                tserver.node.address,
                http.page_names(),
                ftp.file_names(),
                mix=TrafficMix(mean_session_interval=1.0),
                seed=42,
            )
        )
        sim.run(until=120.0)
        assert profile.sessions_started >= 50
        assert profile.http.completed > 0
        assert profile.ftp.downloads_completed > 0
        assert profile.rtmp.sessions_completed > 0

    def test_all_profile_traffic_labeled_benign(self, env):
        sim, lan, _, tserver, dev = env
        probe = lan.add_probe(PacketProbe())
        http = tserver.exec(HttpServer())
        ftp = tserver.exec(FtpServer())
        tserver.exec(RtmpServer())
        dev.exec(
            DeviceProfile(
                tserver.node.address,
                http.page_names(),
                ftp.file_names(),
                mix=TrafficMix(mean_session_interval=2.0),
                seed=1,
            )
        )
        sim.run(until=60.0)
        assert probe.count > 100
        assert all(r.label == 0 for r in probe.records)

    def test_stop_halts_sessions(self, env):
        sim, _, _, tserver, dev = env
        http = tserver.exec(HttpServer())
        ftp = tserver.exec(FtpServer())
        profile = dev.exec(
            DeviceProfile(
                tserver.node.address,
                http.page_names(),
                ftp.file_names(),
                mix=TrafficMix(mean_session_interval=0.5),
            )
        )
        sim.run(until=5.0)
        count = profile.sessions_started
        profile.stop()
        sim.run(until=30.0)
        assert profile.sessions_started == count

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            TrafficMix(http_weight=0, ftp_weight=0, rtmp_weight=0)

    def test_seeded_profiles_differ(self, env):
        sim, _, _, tserver, dev = env
        http = tserver.exec(HttpServer())
        ftp = tserver.exec(FtpServer())
        p1 = DeviceProfile(tserver.node.address, http.page_names(), ftp.file_names(), seed=1)
        p2 = DeviceProfile(tserver.node.address, http.page_names(), ftp.file_names(), seed=2)
        assert p1.rng.random() != p2.rng.random()


class _RecordingProfile(DeviceProfile):
    """DeviceProfile that logs each launch as (time, kind)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.launches = []

    def _launch_session(self, kind):
        self.launches.append((self.sim.now, kind))
        super()._launch_session(kind)


class TestDeviceProfileLookahead:
    def _run(self, tick, until=60.0):
        sim = Simulator()
        lan = CsmaLan(sim)
        orch = Orchestrator(sim, lan)
        tserver = orch.run("tserver", Image("tserver"))
        dev = orch.run("dev", Image("dev"))
        http = tserver.exec(HttpServer(seed=9))
        ftp = tserver.exec(FtpServer(seed=9))
        tserver.exec(RtmpServer(bitrate_bps=100_000))
        profile = dev.exec(
            _RecordingProfile(
                tserver.node.address,
                http.page_names(),
                ftp.file_names(),
                mix=TrafficMix(mean_session_interval=1.0),
                seed=13,
                start_delay=0.4,
                tick=tick,
            )
        )
        sim.run(until=until)
        return profile

    def test_launch_instants_invariant_to_tick_choice(self):
        """Sessions launch at exact Poisson arrival instants regardless of
        how far ahead the anchored ticker books them — the tick is purely
        a look-ahead bound, never a quantizer."""
        narrow = self._run(tick=0.25)
        wide = self._run(tick=4.0)
        assert narrow.launches == wide.launches
        assert narrow.sessions_started == wide.sessions_started
        assert narrow.rng.getstate() == wide.rng.getstate()

    def test_anchored_ticker_stays_drift_free(self):
        """Tick k of the profile's ticker fires at exactly t0 + k*tick
        (anchored multiples, no accumulated float drift)."""
        profile = self._run(tick=0.5, until=30.0)
        ticker = profile._ticker
        base = 0.4  # start_delay; on_start ran at t=0
        assert ticker.t0 == base
        # the anchored schedule has consumed exactly the ticks that fit:
        # tick k fires at t0 + (k+1)*interval, so 59 fit in 29.6s of 0.5s
        assert ticker.ticks == int((30.0 - base) / 0.5)
