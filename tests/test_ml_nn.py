"""Tests for NN layers (with numeric gradient checks), the CNN, the AE."""

import numpy as np
import pytest

from repro.ml import AutoencoderDetector, CnnClassifier, accuracy_score
from repro.ml.cnn import Sequential
from repro.ml.layers import (
    Adam,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    MaxPool1D,
    ReLU,
    SoftmaxCrossEntropy,
)
from repro.ml.preprocessing import NotFittedError

RNG = np.random.default_rng(0)


def numeric_gradient(f, x, eps=1e-6):
    """Central-difference gradient of scalar f wrt array x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        hi = f()
        flat[i] = old - eps
        lo = f()
        flat[i] = old
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


class TestGradientChecks:
    def test_dense_weight_gradients(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, rng)
        x = rng.normal(0, 1, (5, 4))
        target = rng.normal(0, 1, (5, 3))

        def loss():
            out = layer.forward(x)
            return 0.5 * np.sum((out - target) ** 2)

        out = layer.forward(x)
        layer.backward(out - target)
        for param, grad in zip(layer.params(), layer.grads()):
            numeric = numeric_gradient(loss, param)
            np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_dense_input_gradient(self):
        rng = np.random.default_rng(2)
        layer = Dense(4, 3, rng)
        x = rng.normal(0, 1, (5, 4))
        target = rng.normal(0, 1, (5, 3))

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        dx = layer.backward(layer.forward(x) - target)
        np.testing.assert_allclose(dx, numeric_gradient(loss, x), atol=1e-5)

    @pytest.mark.parametrize("padding", ["same", "valid"])
    def test_conv1d_gradients(self, padding):
        rng = np.random.default_rng(3)
        layer = Conv1D(2, 3, kernel_size=3, rng=rng, padding=padding)
        x = rng.normal(0, 1, (4, 2, 8))
        out_shape = layer.forward(x).shape
        target = rng.normal(0, 1, out_shape)

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        dx = layer.backward(layer.forward(x) - target)
        np.testing.assert_allclose(dx, numeric_gradient(loss, x), atol=1e-5)
        for param, grad in zip(layer.params(), layer.grads()):
            np.testing.assert_allclose(grad, numeric_gradient(loss, param), atol=1e-5)

    def test_maxpool_gradient_routes_to_max(self):
        layer = MaxPool1D(2)
        x = np.array([[[1.0, 5.0, 2.0, 3.0]]])
        out = layer.forward(x)
        np.testing.assert_array_equal(out, [[[5.0, 3.0]]])
        dx = layer.backward(np.array([[[1.0, 2.0]]]))
        np.testing.assert_array_equal(dx, [[[0.0, 1.0, 0.0, 2.0]]])

    def test_maxpool_tie_routes_once(self):
        layer = MaxPool1D(2)
        x = np.array([[[3.0, 3.0]]])
        layer.forward(x)
        dx = layer.backward(np.array([[[1.0]]]))
        assert dx.sum() == 1.0

    def test_relu(self):
        layer = ReLU()
        x = np.array([[-1.0, 2.0]])
        np.testing.assert_array_equal(layer.forward(x), [[0.0, 2.0]])
        np.testing.assert_array_equal(layer.backward(np.ones((1, 2))), [[0.0, 1.0]])

    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = RNG.normal(0, 1, (3, 2, 4))
        out = layer.forward(x)
        assert out.shape == (3, 8)
        np.testing.assert_array_equal(layer.backward(out), x)

    def test_softmax_ce_gradient(self):
        head = SoftmaxCrossEntropy()
        rng = np.random.default_rng(4)
        logits = rng.normal(0, 1, (6, 3))
        y = rng.integers(0, 3, 6)

        def loss():
            value, _ = head.forward(logits, y)
            return value

        head.forward(logits, y)
        grad = head.backward()
        np.testing.assert_allclose(grad, numeric_gradient(loss, logits), atol=1e-6)

    def test_softmax_probabilities_normalized(self):
        head = SoftmaxCrossEntropy()
        _, proba = head.forward(np.array([[1000.0, 1000.0]]), np.array([0]))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        assert not np.isnan(proba).any()


class TestDropout:
    def test_identity_at_inference(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = RNG.normal(0, 1, (4, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_scales_kept_units_in_training(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((1, 10_000))
        out = layer.forward(x, training=True)
        # inverted dropout keeps the expectation
        assert out.mean() == pytest.approx(1.0, abs=0.05)
        assert (out == 0).sum() == pytest.approx(5000, abs=300)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0, np.random.default_rng(0))


class TestAdam:
    def test_minimizes_quadratic(self):
        x = np.array([5.0])
        optimizer = Adam([x], lr=0.1)
        for _ in range(300):
            optimizer.step([2 * x])
        assert abs(x[0]) < 0.05


class TestCnnClassifier:
    def test_learns_separable_classes(self):
        rng = np.random.default_rng(5)
        X0 = rng.normal(0, 1, (300, 16))
        X1 = rng.normal(2, 1, (300, 16))
        X = np.vstack([X0, X1])
        y = np.array([0] * 300 + [1] * 300)
        cnn = CnnClassifier(n_features=16, epochs=6, random_state=0).fit(X, y)
        assert accuracy_score(y, cnn.predict(X)) > 0.95

    def test_deterministic_by_seed(self):
        rng = np.random.default_rng(6)
        X = rng.normal(0, 1, (100, 12))
        y = (X[:, 0] > 0).astype(int)
        a = CnnClassifier(n_features=12, epochs=2, random_state=3).fit(X, y)
        b = CnnClassifier(n_features=12, epochs=2, random_state=3).fit(X, y)
        np.testing.assert_allclose(a.predict_proba(X), b.predict_proba(X))

    def test_loss_decreases(self):
        rng = np.random.default_rng(7)
        X = rng.normal(0, 1, (400, 16))
        y = (X[:, :4].sum(axis=1) > 0).astype(int)
        cnn = CnnClassifier(n_features=16, epochs=8, random_state=0).fit(X, y)
        history = cnn.net.history
        assert history[-1] < history[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            CnnClassifier(n_features=16).predict(np.zeros((2, 16)))

    def test_too_few_features_rejected(self):
        with pytest.raises(ValueError):
            CnnClassifier(n_features=3).fit(np.zeros((4, 3)), np.zeros(4, dtype=int))

    def test_n_parameters_counts_weights(self):
        cnn = CnnClassifier(n_features=16, conv_channels=(4, 8), hidden=16)
        # conv1: 4*1*3+4, conv2: 8*4*3+8, dense1: (4*8)*16+16, dense2: 16*2+2
        expected = (12 + 4) + (96 + 8) + (32 * 16 + 16) + (32 + 2)
        assert cnn.n_parameters() == expected

    def test_weight_roundtrip(self):
        rng = np.random.default_rng(8)
        X = rng.normal(0, 1, (50, 12))
        y = (X[:, 0] > 0).astype(int)
        cnn = CnnClassifier(n_features=12, epochs=1, random_state=0).fit(X, y)
        weights = cnn.net.get_weights()
        proba = cnn.predict_proba(X)
        cnn.net.set_weights([w * 0 for w in weights])
        assert not np.allclose(cnn.predict_proba(X), proba)
        cnn.net.set_weights(weights)
        np.testing.assert_allclose(cnn.predict_proba(X), proba)

    def test_set_weights_validates_shapes(self):
        cnn = CnnClassifier(n_features=12, epochs=1, random_state=0)
        rng = np.random.default_rng(9)
        X = rng.normal(0, 1, (20, 12))
        cnn.fit(X, (X[:, 0] > 0).astype(int))
        with pytest.raises(ValueError):
            cnn.net.set_weights([np.zeros(3)])


class TestAutoencoder:
    def test_flags_out_of_profile_points(self):
        rng = np.random.default_rng(10)
        benign = rng.normal(0, 0.5, (500, 8))
        attack = rng.normal(6, 0.5, (200, 8))
        X = np.vstack([benign, attack])
        y = np.array([0] * 500 + [1] * 200)
        ae = AutoencoderDetector(n_features=8, epochs=30, random_state=0).fit(X, y)
        predictions = ae.predict(X)
        assert accuracy_score(y, predictions) > 0.9

    def test_benign_errors_below_threshold(self):
        rng = np.random.default_rng(11)
        benign = rng.normal(0, 0.5, (300, 6))
        y = np.zeros(300, dtype=int)
        ae = AutoencoderDetector(n_features=6, epochs=20, quantile=0.99).fit(benign, y)
        errors = ae.reconstruction_error(benign)
        assert (errors <= ae.threshold_).mean() >= 0.98

    def test_needs_benign_samples(self):
        with pytest.raises(ValueError):
            AutoencoderDetector(n_features=4).fit(
                np.zeros((5, 4)), np.ones(5, dtype=int)
            )

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            AutoencoderDetector(n_features=4).predict(np.zeros((2, 4)))
