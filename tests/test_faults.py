"""Tests for the fault-injection subsystem: plans, wire faults, partitions."""

import random

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    GilbertElliott,
)
from repro.ids import STATUS_DEGRADED, RealTimeIds
from repro.sim import CsmaLan, PacketProbe, Simulator
from repro.sim.tracing import PacketRecord


@pytest.fixture()
def lan():
    sim = Simulator()
    return sim, CsmaLan(sim, data_rate="10Mbps", delay="10us")


def blast(sim, sender, receiver, count=200, interval=0.01, port=5000):
    """Schedule ``count`` UDP datagrams; return the receive-time list."""
    arrivals = []
    sock = receiver.udp.bind(port)
    sock.on_receive = lambda *args: arrivals.append(sim.now)
    out = sender.udp.bind(0)
    for i in range(count):
        sim.schedule(i * interval, out.send_to, receiver.address, port, b"x" * 100)
    return arrivals


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor", start=0.0, duration=1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start"):
            FaultSpec(kind="loss", start=-1.0, duration=1.0, rate=0.5)

    def test_wire_fault_needs_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultSpec(kind="loss", start=0.0, duration=0.0, rate=0.5)

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_loss_rate_bounds(self, rate):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(kind="loss", start=0.0, duration=1.0, rate=rate)

    def test_jitter_needs_positive_bound(self):
        with pytest.raises(ValueError, match="jitter"):
            FaultSpec(kind="jitter", start=0.0, duration=1.0, jitter=0.0)

    def test_burst_loss_probability_bounds(self):
        with pytest.raises(ValueError, match="p_bad"):
            FaultSpec(kind="burst-loss", start=0.0, duration=1.0, p_bad=1.5)

    def test_kill_needs_explicit_targets(self):
        with pytest.raises(ValueError, match="explicit"):
            FaultSpec(kind="kill", start=0.0, restart="no")

    def test_kill_restart_mode_validated(self):
        with pytest.raises(ValueError, match="restart"):
            FaultSpec(kind="kill", start=0.0, targets=("dev-0",), restart="maybe")

    def test_matches_handles_ghost_prefix(self):
        spec = FaultSpec(kind="partition", start=0.0, duration=1.0, targets=("dev-1",))
        assert spec.matches("dev-1")
        assert spec.matches("ghost-dev-1")
        assert not spec.matches("dev-2")


class TestFaultPlan:
    def test_specs_split_by_interpreter(self):
        plan = FaultPlan.of(
            FaultSpec(kind="loss", start=0.0, duration=5.0, rate=0.1),
            FaultSpec(kind="kill", start=2.0, targets=("dev-0",)),
        )
        assert [s.kind for s in plan.wire_specs()] == ["loss"]
        assert [s.kind for s in plan.kill_specs()] == ["kill"]
        assert len(plan) == 2

    def test_until_is_last_stop(self):
        plan = FaultPlan.of(
            FaultSpec(kind="loss", start=1.0, duration=2.0, rate=0.1),
            FaultSpec(kind="jitter", start=4.0, duration=3.0, jitter=0.01),
        )
        assert plan.until == 7.0

    def test_degraded_intervals_merge_overlaps(self):
        plan = FaultPlan.of(
            FaultSpec(kind="partition", start=5.0, duration=5.0, targets=("a",)),
            FaultSpec(kind="kill", start=8.0, duration=4.0, targets=("b",)),
            FaultSpec(kind="loss", start=0.0, duration=20.0, rate=0.5),
        )
        assert plan.degraded_intervals() == [(5.0, 12.0)]

    def test_non_spec_entries_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(specs=("not a spec",))


class TestGilbertElliott:
    def test_stays_good_with_zero_transition(self):
        spec = FaultSpec(
            kind="burst-loss", start=0.0, duration=1.0, p_bad=0.0, loss_good=0.0
        )
        model = GilbertElliott(spec)
        rng = random.Random(1)
        assert not any(model.drops(rng) for _ in range(500))

    def test_bad_state_drops_everything(self):
        spec = FaultSpec(
            kind="burst-loss", start=0.0, duration=1.0,
            p_bad=1.0, p_good=0.0, loss_bad=1.0,
        )
        model = GilbertElliott(spec)
        rng = random.Random(1)
        results = [model.drops(rng) for _ in range(100)]
        assert all(results)
        assert model.bad

    def test_losses_are_bursty(self):
        """Consecutive-loss runs are longer than a Bernoulli with same mean."""
        spec = FaultSpec(
            kind="burst-loss", start=0.0, duration=1.0,
            p_bad=0.05, p_good=0.2, loss_bad=1.0,
        )
        model = GilbertElliott(spec)
        rng = random.Random(7)
        outcomes = [model.drops(rng) for _ in range(5000)]
        runs, current = [], 0
        for lost in outcomes:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs and max(runs) >= 5  # correlated bursts, not isolated drops


class TestWireFaults:
    def test_bernoulli_loss_drops_frames(self, lan):
        sim, net = lan
        a, b = net.add_host("a"), net.add_host("b")
        arrivals = blast(sim, a, b, count=400)
        injector = FaultInjector(sim, net.channel, seed=3)
        plan = FaultPlan.of(FaultSpec(kind="loss", start=0.0, duration=10.0, rate=0.3))
        injector.schedule_plan(plan)
        sim.run(until=10.0)
        assert injector.frames_lost > 0
        assert len(arrivals) == 400 - injector.frames_lost
        # Roughly the configured rate (loose bound; seed-dependent).
        assert 0.15 < injector.frames_lost / 400 < 0.45

    def test_loss_respects_schedule_window(self, lan):
        sim, net = lan
        a, b = net.add_host("a"), net.add_host("b")
        arrivals = blast(sim, a, b, count=100, interval=0.01)
        injector = FaultInjector(sim, net.channel, seed=3)
        # Total loss, but only within [5, 6) — frames outside must survive.
        plan = FaultPlan.of(FaultSpec(kind="loss", start=5.0, duration=1.0, rate=1.0))
        injector.schedule_plan(plan)
        sim.run(until=10.0)
        assert len(arrivals) == 100  # all sent in the first second
        assert injector.frames_lost == 0
        assert [e.action for e in injector.log] == ["activate", "deactivate"]

    def test_corruption_counts_separately(self, lan):
        sim, net = lan
        a, b = net.add_host("a"), net.add_host("b")
        injector = FaultInjector(sim, net.channel, seed=5)
        plan = FaultPlan.of(
            FaultSpec(kind="corrupt", start=0.0, duration=10.0, rate=1.0)
        )
        injector.schedule_plan(plan)  # activation precedes the first send
        arrivals = blast(sim, a, b, count=100)
        sim.run(until=10.0)
        assert arrivals == []
        assert injector.frames_corrupted == 100
        assert injector.frames_lost == 0

    def test_jitter_delays_but_delivers(self, lan):
        sim, net = lan
        a, b = net.add_host("a"), net.add_host("b")
        injector = FaultInjector(sim, net.channel, seed=9)
        plan = FaultPlan.of(
            FaultSpec(kind="jitter", start=0.0, duration=10.0, jitter=0.05)
        )
        injector.schedule_plan(plan)
        arrivals = blast(sim, a, b, count=50)
        sim.run(until=10.0)
        assert len(arrivals) == 50  # nothing dropped
        assert injector.frames_delayed == 50
        assert injector.extra_delay_total > 0.0

    def test_loss_targets_only_named_sender(self, lan):
        sim, net = lan
        a, b, c = net.add_host("a"), net.add_host("b"), net.add_host("c")
        injector = FaultInjector(sim, net.channel, seed=3)
        plan = FaultPlan.of(
            FaultSpec(kind="loss", start=0.0, duration=10.0, rate=1.0, targets=("a",))
        )
        injector.schedule_plan(plan)
        from_a = blast(sim, a, c, count=50, port=5000)
        from_b = blast(sim, b, c, count=50, port=5001)
        sim.run(until=10.0)
        assert from_a == []
        assert len(from_b) == 50

    def test_injector_is_deterministic(self):
        def run_once():
            sim = Simulator()
            net = CsmaLan(sim, data_rate="10Mbps", delay="10us")
            a, b = net.add_host("a"), net.add_host("b")
            arrivals = blast(sim, a, b, count=300)
            injector = FaultInjector(sim, net.channel, seed=21)
            plan = FaultPlan.of(
                FaultSpec(kind="loss", start=0.0, duration=5.0, rate=0.2),
                FaultSpec(kind="jitter", start=1.0, duration=5.0, jitter=0.02),
            )
            injector.schedule_plan(plan)
            sim.run(until=10.0)
            return arrivals, injector.frames_lost, injector.extra_delay_total

        first, second = run_once(), run_once()
        assert first == second


class TestPartition:
    def test_partition_severs_and_heals(self, lan):
        sim, net = lan
        a, b = net.add_host("a"), net.add_host("b")
        arrivals = blast(sim, a, b, count=100, interval=0.1)  # spans 10s
        injector = FaultInjector(sim, net.channel, seed=1)
        plan = FaultPlan.of(
            FaultSpec(kind="partition", start=3.0, duration=4.0, targets=("a",))
        )
        injector.schedule_plan(plan, resolve_device=lambda name: a.interfaces[0].device)
        sim.run(until=12.0)
        device = a.interfaces[0].device
        assert device.attached  # healed
        # Nothing arrives during the partition window (the send scheduled
        # at exactly t=3.0 precedes the partition event in FIFO order).
        assert not [t for t in arrivals if 3.01 < t < 7.0]
        assert [t for t in arrivals if t < 3.0]
        assert [t for t in arrivals if t > 7.0]
        assert [e.action for e in injector.log] == ["partition", "heal"]

    def test_named_partition_without_resolver_fails(self, lan):
        sim, net = lan
        net.add_host("a")
        injector = FaultInjector(sim, net.channel, seed=1)
        plan = FaultPlan.of(
            FaultSpec(kind="partition", start=0.5, duration=1.0, targets=("a",))
        )
        injector.schedule_plan(plan)
        with pytest.raises(RuntimeError, match="resolve_device"):
            sim.run(until=2.0)

    def test_wildcard_partition_silences_the_lan(self, lan):
        sim, net = lan
        a, b = net.add_host("a"), net.add_host("b")
        arrivals = blast(sim, a, b, count=50, interval=0.1)
        injector = FaultInjector(sim, net.channel, seed=1)
        plan = FaultPlan.of(FaultSpec(kind="partition", start=1.0, duration=10.0))
        injector.schedule_plan(plan)
        sim.run(until=4.0)
        assert injector.partitioned_devices == 2
        assert not [t for t in arrivals if t > 1.0]


class TestTestbedWiring:
    def test_apply_faults_rejects_unknown_kill_target(self):
        from repro.testbed import Scenario, Testbed
        from repro.testbed.builder import TestbedError

        testbed = Testbed(Scenario(n_devices=2, seed=3)).build()
        plan = FaultPlan.of(
            FaultSpec(kind="kill", start=1.0, targets=("dev-99",))
        )
        with pytest.raises(TestbedError, match="dev-99"):
            testbed.apply_faults(plan)

    def test_apply_faults_installs_injector(self):
        from repro.testbed import Scenario, Testbed

        testbed = Testbed(Scenario(n_devices=2, seed=3)).build()
        plan = FaultPlan.of(
            FaultSpec(kind="loss", start=1.0, duration=2.0, rate=0.1)
        )
        injector = testbed.apply_faults(plan)
        assert testbed.fault_injector is injector
        assert testbed.lan.channel.fault_injector is injector


class _FailingModel:
    def predict(self, X):
        raise RuntimeError("model exploded")


class _ZeroModel:
    def predict(self, X):
        return np.zeros(len(X), dtype=int)


def _record(t: float, label: int = 0) -> PacketRecord:
    return PacketRecord(
        timestamp=t, src_ip=1, dst_ip=2, protocol=17,
        src_port=1, dst_port=2, size=100, tcp_flags=0, seq=0, label=label,
    )


class TestIdsDegradation:
    def test_interior_gap_emits_outage_windows(self):
        ids = RealTimeIds(_ZeroModel(), "Z", window_seconds=1.0)
        records = [_record(0.5), _record(4.5)]
        report = ids.process(records)
        statuses = [(w.window_index, w.status) for w in report.windows]
        assert statuses == [
            (0, "healthy"), (1, STATUS_DEGRADED), (2, STATUS_DEGRADED),
            (3, STATUS_DEGRADED), (4, "healthy"),
        ]
        outage = report.windows[1]
        assert outage.n_packets == 0 and not outage.scored

    def test_until_extends_trailing_outage(self):
        ids = RealTimeIds(_ZeroModel(), "Z", window_seconds=1.0)
        report = ids.process([_record(0.5)], until=4.0)
        assert [w.window_index for w in report.windows] == [0, 1, 2, 3]
        assert all(w.is_degraded for w in report.windows[1:])

    def test_marked_interval_degrades_overlapping_windows(self):
        ids = RealTimeIds(_ZeroModel(), "Z", window_seconds=1.0)
        ids.mark_degraded(1.5, 2.5)
        report = ids.process([_record(0.5), _record(1.6), _record(2.6), _record(3.5)])
        assert [w.status for w in report.windows] == [
            "healthy", STATUS_DEGRADED, STATUS_DEGRADED, "healthy"
        ]

    def test_mark_degraded_validates_interval(self):
        ids = RealTimeIds(_ZeroModel(), "Z")
        with pytest.raises(ValueError):
            ids.mark_degraded(2.0, 2.0)

    def test_classifier_exception_degrades_window(self):
        ids = RealTimeIds(_FailingModel(), "boom", window_seconds=1.0)
        report = ids.process([_record(0.5, label=0), _record(0.6, label=1)])
        assert ids.classifier_errors == 1
        window = report.windows[0]
        assert window.is_degraded and window.scored
        assert window.accuracy == pytest.approx(0.5)  # zeros vs labels [0, 1]

    def test_report_separates_healthy_and_degraded_accuracy(self):
        ids = RealTimeIds(_ZeroModel(), "Z", window_seconds=1.0)
        ids.mark_degraded(1.0, 2.0)
        report = ids.process(
            [_record(0.5, label=0), _record(1.5, label=1)]  # healthy hit, degraded miss
        )
        assert report.healthy_accuracy == pytest.approx(1.0)
        assert report.degraded_accuracy == pytest.approx(0.0)
        assert report.availability == pytest.approx(0.5)
        breakdown = report.fault_breakdown()
        assert breakdown["n_degraded"] == 1.0
        assert "degraded" in str(report)
