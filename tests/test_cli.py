"""Tests for the ddoshield CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.devices == 6
        assert args.train_duration == 60.0

    def test_dataset_options(self):
        args = build_parser().parse_args(
            ["dataset", "--devices", "3", "--duration", "10", "--out", "x", "--pcap"]
        )
        assert args.devices == 3
        assert args.duration == 10.0
        assert args.pcap is True

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults", "--devices", "3"])
        assert args.devices == 3
        assert args.detect_duration == 30.0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teardown"])


class TestCommands:
    def test_inventory_runs(self, capsys):
        assert main(["inventory", "--devices", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "tserver" in out
        assert "mirai-bot" in out
        assert "2 bots registered" in out

    def test_dataset_writes_csv_and_pcap(self, tmp_path, capsys):
        out = tmp_path / "ds"
        code = main(
            ["dataset", "--devices", "2", "--seed", "5", "--duration", "8",
             "--out", str(out), "--pcap"]
        )
        assert code == 0
        assert (out / "capture.csv").exists()
        assert (out / "capture.pcap").exists()
        text = capsys.readouterr().out
        assert "malicious" in text

    def test_faults_prints_breakdown(self, capsys):
        code = main(
            ["faults", "--devices", "2", "--seed", "5",
             "--train-duration", "25", "--detect-duration", "12"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault plan" in out
        assert "supervisor events" in out
        assert "availability" in out
        assert "restarts" in out

    def test_experiment_prints_tables(self, capsys):
        code = main(
            ["experiment", "--devices", "3", "--seed", "5",
             "--train-duration", "25", "--detect-duration", "12"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "RF" in out and "K-Means" in out and "CNN" in out
