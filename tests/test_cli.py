"""Tests for the ddoshield CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.devices == 6
        assert args.train_duration == 60.0

    def test_dataset_options(self):
        args = build_parser().parse_args(
            ["dataset", "--devices", "3", "--duration", "10", "--out", "x", "--pcap"]
        )
        assert args.devices == 3
        assert args.duration == 10.0
        assert args.pcap is True

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults", "--devices", "3"])
        assert args.devices == 3
        assert args.detect_duration == 30.0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teardown"])

    def test_timeline_defaults(self):
        args = build_parser().parse_args(["timeline"])
        assert args.devices == 6
        assert args.bucket_seconds == 1.0
        assert args.width == 40
        assert args.csv is None and args.json is None and args.trace is None
        assert args.faults is False

    def test_metrics_options(self):
        args = build_parser().parse_args(
            ["metrics", "--devices", "2", "--no-wall", "--trace", "t.json"]
        )
        assert args.devices == 2
        assert args.no_wall is True
        assert args.trace == "t.json"

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.devices == "6"
        assert args.seeds == "7"
        assert args.jobs == 1
        assert args.cache_dir == ".ddoshield-cache"
        assert args.min_cache_hit_rate is None

    def test_campaign_options(self):
        args = build_parser().parse_args(
            ["campaign", "--devices", "2,4", "--seeds", "5,7", "--jobs", "2",
             "--cache-dir", "c", "--min-cache-hit-rate", "0.5", "--faults"]
        )
        assert args.devices == "2,4"
        assert args.seeds == "5,7"
        assert args.jobs == 2
        assert args.faults is True
        assert args.min_cache_hit_rate == 0.5


class TestCommands:
    def test_inventory_runs(self, capsys):
        assert main(["inventory", "--devices", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "tserver" in out
        assert "mirai-bot" in out
        assert "2 bots registered" in out

    def test_dataset_writes_csv_and_pcap(self, tmp_path, capsys):
        out = tmp_path / "ds"
        code = main(
            ["dataset", "--devices", "2", "--seed", "5", "--duration", "8",
             "--out", str(out), "--pcap"]
        )
        assert code == 0
        assert (out / "capture.csv").exists()
        assert (out / "capture.pcap").exists()
        text = capsys.readouterr().out
        assert "malicious" in text

    def test_faults_prints_breakdown(self, capsys):
        code = main(
            ["faults", "--devices", "2", "--seed", "5",
             "--train-duration", "25", "--detect-duration", "12"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault plan" in out
        assert "supervisor events" in out
        assert "availability" in out
        assert "restarts" in out

    def test_experiment_prints_tables(self, capsys):
        code = main(
            ["experiment", "--devices", "3", "--seed", "5",
             "--train-duration", "25", "--detect-duration", "12"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "RF" in out and "K-Means" in out and "CNN" in out

    def test_timeline_renders_chart_and_exports(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        csv_path = tmp_path / "timeline.csv"
        code = main(
            ["timeline", "--devices", "2", "--seed", "5",
             "--train-duration", "25", "--detect-duration", "12",
             "--trace", str(trace_path), "--csv", str(csv_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "packets (peak" in out
        assert "attack.start" in out
        trace = json.loads(trace_path.read_text())
        names = {event["name"] for event in trace}
        for stage in ("build", "capture-train", "train-models",
                      "capture-detect", "detect"):
            assert f"stage.{stage}" in names
        assert csv_path.read_text().startswith("second,")

    def test_metrics_prints_registry_and_spans(self, capsys):
        code = main(
            ["metrics", "--devices", "2", "--seed", "5",
             "--train-duration", "25", "--detect-duration", "12", "--no-wall"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sim.events_dispatched" in out
        assert "spans:" in out
        assert "stage.detect" in out

    def test_campaign_runs_and_resumes_from_cache(self, tmp_path, capsys):
        import json

        cache = tmp_path / "cache"
        argv = ["campaign", "--devices", "2", "--seeds", "5",
                "--train-duration", "20", "--detect-duration", "10",
                "--cache-dir", str(cache)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Table I aggregate" in cold
        assert "5 executed" in cold

        out_json = tmp_path / "report.json"
        warm_argv = argv + ["--min-cache-hit-rate", "0.99", "--out", str(out_json)]
        assert main(warm_argv) == 0
        warm = capsys.readouterr().out
        assert "5/5 stage(s) served from cache (100%)" in warm
        payload = json.loads(out_json.read_text())
        assert payload["cache"]["cache_hits"] == 5

    def test_campaign_min_hit_rate_fails_cold_run(self, tmp_path, capsys):
        code = main(
            ["campaign", "--devices", "2", "--seeds", "6",
             "--train-duration", "20", "--detect-duration", "10",
             "--cache-dir", str(tmp_path / "cache"),
             "--min-cache-hit-rate", "0.5"]
        )
        assert code == 1
        assert "below required" in capsys.readouterr().out

    def test_campaign_scenarios_file(self, tmp_path, capsys):
        import json

        from repro.testbed import Scenario

        scenarios = tmp_path / "scenarios.json"
        scenarios.write_text(json.dumps([Scenario(n_devices=2).to_dict()]))
        code = main(
            ["campaign", "--scenarios", str(scenarios), "--seeds", "5",
             "--train-duration", "20", "--detect-duration", "10",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        assert "s0-dev2 seed=5" in capsys.readouterr().out

    def test_campaign_rejects_bad_int_list(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--devices", "two"])
