"""End-to-end tests for defended pipeline runs.

One small configuration (3 devices, seed 41) is run through the staged
pipeline in four flavours — defended, defended again (determinism),
monitor-mode baseline, and defended-under-chaos — and the results are
compared pairwise.  These are the pinned "closing the loop" guarantees:
the defense actually fires, it beats the undefended baseline on the same
seed, it never blocks a benign source, and the whole defended run is
bit-reproducible, faults included.
"""

import json

import pytest

from repro.obs.timeline import timeline_from_result
from repro.pipeline import run_experiment_pipeline
from repro.pipeline.store import canonical_json
from repro.testbed import MitigationPlan, Scenario

N_DEVICES, SEED = 3, 41
TRAIN, DETECT = 25.0, 12.0


def defended_scenario(**plan_kwargs):
    return Scenario(
        n_devices=N_DEVICES,
        seed=SEED,
        mitigation_plan=MitigationPlan(model="K-Means", **plan_kwargs),
    )


def run(scenario, **kwargs):
    result, outcome = run_experiment_pipeline(
        scenario, train_duration=TRAIN, detect_duration=DETECT, **kwargs
    )
    return result, outcome


@pytest.fixture(scope="module")
def defended():
    return run(defended_scenario())


@pytest.fixture(scope="module")
def monitor():
    return run(defended_scenario(mode="monitor"))


@pytest.fixture(scope="module")
def chaos():
    scenario = defended_scenario()
    return run(
        scenario,
        fault_plan=scenario.chaos_fault_schedule(DETECT),
        faults=True,
    )


class TestDefendedRun:
    def test_mitigation_attached_to_result(self, defended):
        result, _ = defended
        m = result.mitigation
        assert m is not None
        assert set(m) == {"plan", "attack_spans", "events", "summary", "recovery", "impact"}
        assert m["plan"] == result.scenario.mitigation_plan.to_dict()
        assert len(m["attack_spans"]) == 3

    def test_defense_fires(self, defended):
        result, _ = defended
        summary = result.mitigation["summary"]
        assert summary["blocks_issued"] >= 1
        assert summary["dropped_by_blocklist"] > 100
        assert summary["syn_cookies_sent"] > 0
        actions = {e["action"] for e in result.mitigation["events"]}
        assert {"verdict", "block"} <= actions

    def test_recovery_metrics_are_sane(self, defended):
        result, _ = defended
        metrics = result.recovery_metrics()
        assert metrics is not None
        assert metrics.time_to_mitigate is not None
        assert metrics.time_to_mitigate < 5.0
        assert metrics.collateral_block_rate == 0.0  # no benign source blocked
        assert metrics.blocked_sources >= 1
        rows = dict(result.recovery_table())
        assert "goodput retained" in rows

    def test_defended_run_is_deterministic(self, defended):
        """Same seed twice: the mitigation record is byte-identical."""
        result, _ = defended
        again, _ = run(defended_scenario())
        assert canonical_json(again.mitigation) == canonical_json(result.mitigation)

    def test_detection_tables_still_produced(self, defended):
        result, _ = defended
        assert result.table1()
        assert result.table2()

    def test_stage_dag_shape_unchanged(self, defended):
        _, outcome = defended
        assert sorted(outcome.cache_summary()) == [
            "build", "capture-detect", "capture-train", "detect", "train-models",
        ]


class TestDefendedVsMonitor:
    def test_monitor_mode_measures_without_filtering(self, monitor):
        result, _ = monitor
        summary = result.mitigation["summary"]
        assert summary["mode"] == "monitor"
        assert summary["blocks_issued"] == 0
        assert summary["dropped_by_blocklist"] == 0
        assert summary["syn_cookies_sent"] == 0
        metrics = result.recovery_metrics()
        assert metrics.time_to_mitigate is None
        assert metrics.blocked_sources == 0

    def test_defended_beats_undefended_on_same_seed(self, defended, monitor):
        """The pinned recovery comparison: same seed, same schedules."""
        d = defended[0].recovery_metrics()
        u = monitor[0].recovery_metrics()
        assert d.goodput_retained_pct > u.goodput_retained_pct
        assert d.attack_goodput > u.attack_goodput


class TestDefendedChaos:
    def test_chaos_run_completes_with_fallback_cycles(self, chaos):
        result, _ = chaos
        actions = [e["action"] for e in result.mitigation["events"]]
        assert actions.count("fallback.enter") == 2  # ids kill + ids partition
        assert actions.count("fallback.exit") == 2
        assert actions.count("resync") == 2
        assert result.mitigation["summary"]["fallback_entries"] == 2

    def test_defense_survives_the_faults(self, chaos):
        result, _ = chaos
        summary = result.mitigation["summary"]
        assert summary["blocks_issued"] >= 1  # kept mitigating around the outage
        metrics = result.recovery_metrics()
        assert metrics.collateral_block_rate == 0.0
        assert metrics.goodput_retained_pct > 50.0  # the CI recovery floor

    def test_fallback_ordering_is_consistent(self, chaos):
        result, _ = chaos
        events = [
            e for e in result.mitigation["events"]
            if e["action"].startswith("fallback") or e["action"] == "resync"
        ]
        times = [e["time"] for e in events]
        assert times == sorted(times)
        # enter/exit alternate: never two enters without an exit between
        state = 0
        for event in events:
            if event["action"] == "fallback.enter":
                assert state == 0
                state = 1
            elif event["action"] == "fallback.exit":
                assert state == 1
                state = 0

    def test_chaos_run_is_deterministic(self, chaos):
        result, _ = chaos
        scenario = defended_scenario()
        again, _ = run(
            scenario,
            fault_plan=scenario.chaos_fault_schedule(DETECT),
            faults=True,
        )
        assert canonical_json(again.mitigation) == canonical_json(result.mitigation)


class TestTimeline:
    def test_recovery_columns_and_markers(self, defended):
        result, _ = defended
        timeline = timeline_from_result(result)
        assert "goodput" in timeline.columns
        assert "half_open" in timeline.columns
        assert "conn.accepted" in timeline.columns
        marks = ";".join(row["events"] for row in timeline.rows())
        assert "mitigation.block" in marks

    def test_chaos_timeline_shows_fallback(self, chaos):
        result, _ = chaos
        timeline = timeline_from_result(result)
        marks = ";".join(row["events"] for row in timeline.rows())
        assert "mitigation.fallback.enter" in marks
        assert "mitigation.resync" in marks
        csv = timeline.to_csv()
        assert "goodput" in csv.splitlines()[0]

    def test_render_ascii_plots_goodput(self, defended):
        result, _ = defended
        art = timeline_from_result(result).render_ascii(traffic="goodput")
        assert "goodput" in art


class TestMitigateStageCaching:
    def test_warm_rerun_serves_mitigation_from_cache(self, tmp_path, defended):
        cold_result, cold_outcome = run(defended_scenario(), store=tmp_path)
        assert all(not s["cache_hit"] for s in cold_outcome.cache_summary().values())
        warm_result, warm_outcome = run(defended_scenario(), store=tmp_path)
        assert all(s["cache_hit"] for s in warm_outcome.cache_summary().values())
        assert canonical_json(warm_result.mitigation) == canonical_json(
            cold_result.mitigation
        )
        # and it matches the uncached run bit-for-bit too
        assert canonical_json(warm_result.mitigation) == canonical_json(
            defended[0].mitigation
        )

    def test_plan_change_misses_cache(self, tmp_path):
        # The plan lives in the scenario (and in MitigateStage params),
        # so a tweaked plan can never be served a stale defended capture.
        _, cold = run(defended_scenario(), store=tmp_path)
        tweaked_result, tweaked = run(defended_scenario(block_seconds=9.0), store=tmp_path)
        assert not tweaked.cache_summary()["capture-detect"]["cache_hit"]
        assert tweaked_result.mitigation["plan"]["block_seconds"] == 9.0
