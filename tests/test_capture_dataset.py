"""Tests for the labelled traffic dataset."""

import pytest
from hypothesis import given, strategies as st

from repro.capture import TrafficDataset
from repro.sim.tracing import PacketRecord


def record(ts=0.0, label=0, attack=None, src=1, dst=2, dport=80, proto=6):
    return PacketRecord(
        timestamp=ts,
        src_ip=src,
        dst_ip=dst,
        protocol=proto,
        src_port=1000,
        dst_port=dport,
        size=60,
        tcp_flags=16,
        seq=7,
        label=label,
        attack=attack,
    )


def mixed_dataset(n_benign=60, n_malicious=40):
    records = [record(ts=i * 0.01, label=0) for i in range(n_benign)]
    records += [
        record(ts=(n_benign + i) * 0.01, label=1, attack="syn_flood")
        for i in range(n_malicious)
    ]
    return TrafficDataset(records)


class TestSummary:
    def test_counts(self):
        summary = mixed_dataset().summary()
        assert summary.total == 100
        assert summary.malicious == 40
        assert summary.benign == 60
        assert summary.malicious_fraction == pytest.approx(0.4)
        assert summary.by_attack == {"syn_flood": 40}

    def test_empty_dataset(self):
        summary = TrafficDataset([]).summary()
        assert summary.total == 0
        assert summary.malicious_fraction == 0.0
        assert TrafficDataset([]).duration == 0.0

    def test_duration(self):
        assert mixed_dataset().duration == pytest.approx(0.99)

    def test_str_contains_percentages(self):
        text = str(mixed_dataset().summary())
        assert "40.0%" in text
        assert "syn_flood" in text


class TestSplits:
    def test_chronological_split_respects_time(self):
        train, test = mixed_dataset().chronological_split(0.7)
        assert len(train) == 70 and len(test) == 30
        assert max(r.timestamp for r in train) <= min(r.timestamp for r in test)

    def test_stratified_split_preserves_ratio(self):
        train, test = mixed_dataset(600, 400).stratified_split(0.75, seed=1)
        assert train.summary().malicious_fraction == pytest.approx(0.4, abs=0.02)
        assert test.summary().malicious_fraction == pytest.approx(0.4, abs=0.02)

    def test_stratified_split_is_partition(self):
        dataset = mixed_dataset(30, 20)
        train, test = dataset.stratified_split(0.6, seed=2)
        assert len(train) + len(test) == len(dataset)
        seen = sorted(r.timestamp for r in list(train) + list(test))
        assert seen == sorted(r.timestamp for r in dataset)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            mixed_dataset().chronological_split(1.0)
        with pytest.raises(ValueError):
            mixed_dataset().stratified_split(0.0)

    @given(st.floats(min_value=0.1, max_value=0.9))
    def test_property_chronological_sizes(self, fraction):
        dataset = mixed_dataset(50, 50)
        train, test = dataset.chronological_split(fraction)
        assert len(train) == int(100 * fraction)
        assert len(train) + len(test) == 100


class TestFilters:
    def test_filter_by_label(self):
        malicious = mixed_dataset().filter(lambda r: r.label == 1)
        assert len(malicious) == 40
        assert all(r.label == 1 for r in malicious)

    def test_time_slice(self):
        sliced = mixed_dataset().time_slice(0.2, 0.5)
        assert all(0.2 <= r.timestamp < 0.5 for r in sliced)
        assert len(sliced) == 30

    def test_merge_sorts_by_time(self):
        a = TrafficDataset([record(ts=2.0), record(ts=4.0)])
        b = TrafficDataset([record(ts=1.0), record(ts=3.0)])
        merged = TrafficDataset.merge([a, b])
        times = [r.timestamp for r in merged]
        assert times == sorted(times)
        assert len(merged) == 4


class TestCsv:
    def test_roundtrip(self, tmp_path):
        dataset = mixed_dataset(10, 5)
        path = tmp_path / "capture.csv"
        dataset.to_csv(path)
        loaded = TrafficDataset.from_csv(path)
        assert len(loaded) == len(dataset)
        for original, restored in zip(dataset, loaded):
            assert original == restored

    def test_roundtrip_preserves_float_timestamps(self, tmp_path):
        dataset = TrafficDataset([record(ts=1.2345678901234)])
        path = tmp_path / "t.csv"
        dataset.to_csv(path)
        assert TrafficDataset.from_csv(path)[0].timestamp == 1.2345678901234

    def test_none_attack_roundtrips(self, tmp_path):
        dataset = TrafficDataset([record(attack=None), record(attack="udp_flood", label=1)])
        path = tmp_path / "a.csv"
        dataset.to_csv(path)
        loaded = TrafficDataset.from_csv(path)
        assert loaded[0].attack is None
        assert loaded[1].attack == "udp_flood"
