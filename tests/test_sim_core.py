"""Unit and property tests for the event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.core import SimulationError, Simulator


def test_time_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, seen.append, "c")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_simultaneous_events_run_fifo():
    sim = Simulator()
    seen = []
    for tag in "abcde":
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == list("abcde")


def test_priority_orders_simultaneous_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "timer", priority=Simulator.PRIORITY_TIMER)
    sim.schedule(1.0, seen.append, "normal", priority=Simulator.PRIORITY_NORMAL)
    sim.run()
    assert seen == ["normal", "timer"]


def test_now_advances_to_event_time():
    sim = Simulator()
    observed = []
    sim.schedule(2.5, lambda: observed.append(sim.now))
    sim.run()
    assert observed == [2.5]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(5.0, seen.append, "late")
    sim.run(until=2.0)
    assert seen == ["early"]
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert seen == ["early", "late"]


def test_run_until_advances_time_even_when_queue_drains():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_abs(1.0, lambda: None)


def test_cancelled_event_does_not_run():
    sim = Simulator()
    seen = []
    event = sim.schedule(1.0, seen.append, "x")
    event.cancel()
    sim.run()
    assert seen == []


def test_stop_halts_immediately():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, sim.stop)
    sim.schedule(2.0, seen.append, "never")
    sim.run()
    assert seen == []
    assert sim.now == 1.0


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def first():
        sim.schedule(1.0, seen.append, "second")

    sim.schedule(1.0, first)
    sim.run()
    assert seen == ["second"]


def test_clear_drops_pending_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "x")
    sim.clear()
    sim.run()
    assert seen == []


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    ev = sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.pending_events == 1


class TestHeapCompaction:
    def test_mass_cancellation_triggers_compaction(self):
        sim = Simulator()
        doomed = [sim.schedule(1000.0 + i, lambda: None) for i in range(100)]
        survivor = []
        sim.schedule(1.0, survivor.append, "ran")
        for event in doomed:
            event.cancel()
        assert sim.heap_compactions >= 1
        assert sim.pending_events == 1
        # The sweep physically removed the bulk of the cancelled events
        # (the remainder is below the compaction threshold and drains
        # lazily as the heap is popped).
        assert len(sim._heap) < 60
        sim.run()
        assert survivor == ["ran"]

    def test_small_heaps_are_not_compacted(self):
        sim = Simulator()
        events = [sim.schedule(10.0, lambda: None) for _ in range(10)]
        for event in events:
            event.cancel()
        assert sim.heap_compactions == 0
        assert sim.pending_events == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        events = [sim.schedule(10.0, lambda: None) for _ in range(5)]
        events[0].cancel()
        events[0].cancel()
        assert sim.pending_events == 4

    def test_cancel_after_fire_keeps_counter_sane(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()  # already popped: must not touch the heap counter
        assert sim.pending_events == 0
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 1

    def test_compaction_preserves_execution_order(self):
        sim = Simulator()
        seen = []
        keep = [sim.schedule(float(i), seen.append, i) for i in range(1, 40, 2)]
        doomed = [sim.schedule(float(i), seen.append, i) for i in range(0, 90, 2)]
        for event in doomed:
            event.cancel()
        sim.run()
        assert seen == sorted(seen)
        assert seen == list(range(1, 40, 2))

    def test_clear_resets_cancelled_counter(self):
        sim = Simulator()
        event = sim.schedule(5.0, lambda: None)
        event.cancel()
        sim.clear()
        assert sim.pending_events == 0


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_property_execution_order_is_sorted(delays):
    """Whatever the scheduling order, execution times are non-decreasing."""
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.integers(0, 1)),
        min_size=1,
        max_size=40,
    )
)
def test_property_time_never_goes_backwards(schedule):
    sim = Simulator()
    trace = []
    for delay, priority in schedule:
        sim.schedule(delay, lambda: trace.append(sim.now), priority=priority)
    sim.run()
    assert all(b >= a for a, b in zip(trace, trace[1:]))
