"""Tests for the dual-path parity checker (``ddoshield check-parity``).

Three layers pin the batch/scalar contract:

* **static** — the BAT/ORD002 rules fire at exactly the expected
  fixture lines, pair discovery covers the real dual-path surface, and
  the committed tree has zero unbaselined findings;
* **structural** — every discovered packet-train ``*_batch`` method is
  a no-op on an empty :class:`~repro.sim.packet.PacketBatch`;
* **behavioural** — hypothesis drives random trains through
  ``receive_batch``-style methods and asserts they leave components in
  exactly the state a fold of scalar calls would.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    Baseline,
    check_parity_paths,
    diff_findings,
    format_text,
)
from repro.analysis.effects import collect_class_effects
from repro.analysis.parity import (
    DEFAULT_PARITY_PATHS,
    _batch_param,
    discover_pairs,
)
from repro.analysis.walker import build_context, iter_python_files, run_rules
from repro.analysis.rules import iter_rules
from repro.cli import main
from repro.ids.defense import UpstreamFilter
from repro.sim import CsmaLan, PacketProbe, Simulator
from repro.sim.address import BROADCAST_MAC
from repro.sim.packet import PacketBatch, TcpFlags
from repro.sim.queue import DropTailQueue
from repro.testbed.impact import _FrameTap, VictimMonitor

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent


def check_fixture(name: str):
    ctx = build_context(
        (FIXTURES / name).read_text(), path=f"tests/lint_fixtures/{name}"
    )
    rules = [r for r in iter_rules(category="parity") if r.rule_id != "BAT003"]
    return run_rules(ctx, rules)


def hits(findings) -> set[tuple[str, int]]:
    return {(f.rule_id, f.line) for f in findings}


# ----------------------------------------------------------------------
# Rule fixtures


class TestParityRuleFixtures:
    def test_bat001_bat002_bat004_fire_on_drifting_twins(self):
        findings, _ = check_fixture("parity_drift.py")
        assert hits(findings) == {
            ("BAT001", 21),  # receive_batch drops the self.dropped update
            ("BAT004", 21),  # ... and mutates state with no empty guard
            ("BAT002", 40),  # observe_batch loops the scalar twin
        }
        divergence = next(f for f in findings if f.rule_id == "BAT001")
        assert divergence.severity == "error"
        assert "dropped" in divergence.message

    def test_ord002_fires_on_racing_handlers_only(self):
        findings, _ = check_fixture("ord002_race.py")
        assert hits(findings) == {("ORD002", 20), ("ORD002", 24)}
        # The commutative counter-only handler stays quiet.
        assert all("_bump" not in f.message for f in findings)
        assert all("last_winner" in f.message for f in findings)

    def test_lint_ok_comment_suppresses_parity_rules(self):
        source = (FIXTURES / "parity_drift.py").read_text()
        source = source.replace(
            "def receive_batch(self, batch, times) -> None:",
            "def receive_batch(self, batch, times) -> None:  # repro: lint-ok[BAT001,BAT004]",
        )
        ctx = build_context(source, path="tests/lint_fixtures/parity_drift.py")
        rules = [r for r in iter_rules(category="parity") if r.rule_id != "BAT003"]
        findings, suppressed = run_rules(ctx, rules)
        assert suppressed == 2
        assert {f.rule_id for f in findings} == {"BAT002"}


# ----------------------------------------------------------------------
# Pair discovery


def _discovered_train_methods() -> set[tuple[str, str, str]]:
    """(class, scalar, batch) triples for packet-train batch methods."""
    triples = set()
    for file in iter_python_files(list(DEFAULT_PARITY_PATHS), REPO_ROOT):
        ctx = build_context(file.read_text(encoding="utf-8"), path=str(file))
        for info in collect_class_effects(ctx.tree):
            for scalar, batch in discover_pairs(info):
                if _batch_param(info.methods[batch]) is not None:
                    triples.add((info.name, scalar, batch))
    return triples


#: The dual-path surface this suite must keep covered.  Growing the set
#: is expected (add the twin here + an empty-batch case below); silently
#: shrinking or renaming it is what this pin catches.
EXPECTED_TRAIN_METHODS = {
    ("CsmaNetDevice", "receive", "receive_batch"),
    ("CsmaNetDevice", "send", "send_batch"),
    ("Node", "receive", "receive_batch"),
    ("Node", "_forward", "_forward_batch"),
    ("Node", "send_ipv4", "send_ipv4_batch"),
    ("DropTailQueue", "enqueue", "enqueue_batch"),
    ("TcpStack", "receive", "receive_batch"),
    ("TcpStack", "send_segment", "send_segment_batch"),
    ("TcpSocket", "handle", "handle_batch"),
    ("PacketProbe", "__call__", "observe_batch"),
    ("UdpSocket", "handle", "handle_batch"),
    ("UdpSocket", "send_to", "send_to_batch"),
    ("UdpStack", "receive", "receive_batch"),
    ("UdpStack", "send_datagram", "send_datagram_batch"),
    ("UpstreamFilter", "should_drop", "should_drop_batch"),
    ("_LiveTapRx", "__call__", "observe_batch"),
    ("_FrameTap", "__call__", "observe_batch"),
}


class TestPairDiscovery:
    def test_discovery_covers_the_dual_path_surface(self):
        assert _discovered_train_methods() == EXPECTED_TRAIN_METHODS


# ----------------------------------------------------------------------
# Clean tree + CLI


class TestTreeParity:
    def test_tree_has_no_unbaselined_parity_findings(self):
        """Acceptance: ``ddoshield check-parity`` is green on the tree."""
        findings, suppressed, files = check_parity_paths(root=REPO_ROOT)
        baseline = Baseline.load(REPO_ROOT / "analysis" / "parity_baseline.json")
        report = diff_findings(
            findings, baseline, suppressed=suppressed, files_checked=files
        )
        assert report.ok, format_text(report)
        assert files > 25  # sanity: the walk covered the dual-path subtrees
        assert not report.stale_fingerprints, (
            "parity baseline has stale entries; refresh with "
            "`ddoshield check-parity --update-baseline`"
        )

    def test_every_baseline_entry_is_justified(self):
        payload = json.loads(
            (REPO_ROOT / "analysis" / "parity_baseline.json").read_text()
        )
        for entry in payload["findings"]:
            assert entry["justification"].strip(), entry


class TestCheckParityCli:
    def test_cli_green_against_committed_baseline(self, capsys):
        rc = main(["check-parity", "--root", str(REPO_ROOT)])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "0 new finding(s)" in out

    def test_cli_fails_on_counter_drift_fixture(self, capsys):
        """Acceptance: a batch twin dropping a scalar counter update is a
        nonzero exit naming the rule and location."""
        rc = main([
            "check-parity", "--root", str(REPO_ROOT),
            "tests/lint_fixtures/parity_drift.py", "--no-baseline",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "BAT001" in out
        assert "tests/lint_fixtures/parity_drift.py:21" in out

    def test_cli_fails_on_unparseable_file(self, capsys):
        rc = main([
            "check-parity", "--root", str(REPO_ROOT),
            "tests/lint_fixtures/unparseable.py", "--no-baseline",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "PARSE001" in out


# ----------------------------------------------------------------------
# Empty-batch no-op property


def _empty_tcp(**overrides):
    kwargs = dict(
        src_ip=0x0A000001, dst_ip=0x0A000002,
        src_port=1000, dst_port=80, flags=TcpFlags.SYN,
    )
    kwargs.update(overrides)
    return PacketBatch.tcp_batch(0, **kwargs)


def _empty_udp():
    return PacketBatch.udp_batch(
        0, src_ip=0x0A000001, dst_ip=0x0A000002, src_port=1000, dst_port=53
    )


class TestEmptyBatchIsNoOp:
    """``len(batch) == 0`` must be a structural no-op for every
    discovered packet-train batch method (the BAT004 contract)."""

    def test_every_discovered_method_has_an_empty_batch_case(self):
        covered = {
            ("CsmaNetDevice", "receive_batch"),
            ("CsmaNetDevice", "send_batch"),
            ("Node", "receive_batch"),
            ("Node", "_forward_batch"),
            ("Node", "send_ipv4_batch"),
            ("DropTailQueue", "enqueue_batch"),
            ("TcpStack", "receive_batch"),
            ("TcpStack", "send_segment_batch"),
            ("TcpSocket", "handle_batch"),
            ("PacketProbe", "observe_batch"),
            ("UdpSocket", "handle_batch"),
            ("UdpSocket", "send_to_batch"),
            ("UdpStack", "receive_batch"),
            ("UdpStack", "send_datagram_batch"),
            ("UpstreamFilter", "should_drop_batch"),
            ("_LiveTapRx", "observe_batch"),
            ("_FrameTap", "observe_batch"),
        }
        discovered = {(c, b) for c, _, b in _discovered_train_methods()}
        assert discovered == covered

    def test_network_stack_methods_ignore_empty_trains(self):
        sim = Simulator()
        lan = CsmaLan(sim)
        host = lan.add_host("tserver")
        peer = lan.add_host("dev-0")
        probe = lan.add_probe(PacketProbe())
        host.tcp.listen(80, on_accept=lambda sock: None)
        device = host.interfaces[0].device
        times = np.zeros(0, dtype=np.float64)
        empty = _empty_tcp()
        framed = empty.with_macs(device.mac, device.mac)

        before = sim.state_hash()
        device.receive_batch(framed, times)
        assert device.send_batch(empty, BROADCAST_MAC) == 0
        host.receive_batch(framed, device)
        host._forward_batch(empty)
        assert host.send_ipv4_batch(empty) == 0
        host.tcp.receive_batch(empty)
        assert host.tcp.send_segment_batch(empty) == 0
        probe.observe_batch(empty, times)
        host.udp.receive_batch(_empty_udp())
        assert host.udp.send_datagram_batch(_empty_udp()) == 0
        from repro.sim.tcp import TcpSocket

        tsock = TcpSocket(host.tcp, local_port=2000)
        tsock.handle_batch(empty)
        assert tsock.bytes_received == 0 and tsock.rcv_nxt == 0
        usock = host.udp.bind(5353)
        usock.handle_batch(_empty_udp())
        assert usock.send_to_batch(_empty_udp()) == 0
        assert usock.datagrams_sent == 0 and usock.datagrams_received == 0
        usock.close()
        assert sim.state_hash() == before
        assert device.rx_count == 0 and device.tx_count == 0
        assert host.packets_received == 0 and peer.packets_received == 0
        assert probe.count == 0 and probe.records == []
        assert host.udp.unreachable == 0

    def test_queue_filter_and_taps_ignore_empty_trains(self):
        queue = DropTailQueue(capacity=4)
        assert queue.enqueue_batch(_empty_tcp()) == 0
        assert (len(queue), queue.enqueued, queue.dropped) == (0, 0, 0)

        upstream = UpstreamFilter(victim_ip=0x0A000002)
        upstream.block(0x0A000001, until=100.0)
        assert upstream.should_drop_batch(_empty_tcp(), None, now=0.0) is None
        assert upstream.dropped == 0 and upstream.active_blocks == 1

        monitor = VictimMonitor()
        tap = _FrameTap(monitor)
        tap.observe_batch(_empty_tcp(), np.zeros(0))
        assert monitor._rx_bytes_total == 0.0

        from repro.testbed.builder import _LiveTapRx

        probe = PacketProbe()
        live = _LiveTapRx(probe, Simulator())
        live.observe_batch(_empty_tcp(), np.zeros(0))
        assert probe.count == 0


# ----------------------------------------------------------------------
# Fold equivalence: a train through *_batch == n scalar calls


def _syn_train(rows):
    src_ip = [0x0A000100 + s for s, _, _ in rows]
    return PacketBatch.tcp_batch(
        len(rows),
        src_ip=src_ip,
        dst_ip=0x0A000002,
        src_port=[p for _, p, _ in rows],
        dst_port=80,
        seq=[q for _, _, q in rows],
        flags=TcpFlags.SYN,
    )


def _listener(backlog=8, cookies=False):
    sim = Simulator()
    lan = CsmaLan(sim)
    host = lan.add_host("tserver")
    host.tcp.seed(99)
    listener = host.tcp.listen(80, on_accept=lambda sock: None, backlog=backlog)
    listener.syn_cookies_enabled = cookies
    return sim, host, listener


syn_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),  # source host (collisions!)
        st.integers(min_value=1000, max_value=1004),  # source port
        st.integers(min_value=0, max_value=2**31),  # ISN
    ),
    min_size=1,
    max_size=30,
)


class TestFoldEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(rows=syn_rows, cookies=st.booleans())
    def test_tcp_listener_syn_train_equals_scalar_fold(self, rows, cookies):
        """handle_syn_batch == n handle_syn calls: same backlog entries in
        the same order, same ISN draws, same drop/cookie counters."""
        batch = _syn_train(rows)
        _, _, scalar = _listener(cookies=cookies)
        for packet in batch.packets():
            scalar.handle_syn(packet)
        _, _, batched = _listener(cookies=cookies)
        batched.handle_syn_batch(batch.src_ip, batch.src_port, batch.seq)
        assert list(batched.half_open) == list(scalar.half_open)
        assert batched._isns == scalar._isns
        assert batched.syn_dropped == scalar.syn_dropped
        assert batched.syn_cookies_sent == scalar.syn_cookies_sent

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),  # dst port selector
                st.integers(min_value=40, max_value=200),  # payload length
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_udp_stack_train_equals_scalar_fold(self, rows):
        """receive_batch == n receive calls: same per-socket delivery
        order, same unreachable count."""
        ports = [53, 9000]  # bound; selectors 2-4 hit closed ports

        def build():
            host = CsmaLan(Simulator()).add_host("tserver")
            log = []
            for port in ports:
                sock = host.udp.bind(port)
                sock.on_receive = (
                    lambda sock, payload, length, src, sport, _p=port: log.append(
                        (_p, length, sport)
                    )
                )
            return host.udp, log

        batch = PacketBatch.udp_batch(
            len(rows),
            src_ip=0x0A000001,
            dst_ip=0x0A000002,
            src_port=2000,
            dst_port=[ports[s] if s < len(ports) else 7000 + s for s, _ in rows],
            payload_len=[ln for _, ln in rows],
        )
        scalar_udp, scalar_log = build()
        for packet in batch.packets():
            scalar_udp.receive(packet)
        batch_udp, batch_log = build()
        batch_udp.receive_batch(batch)
        assert batch_log == scalar_log
        assert batch_udp.unreachable == scalar_udp.unreachable

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),  # source host
                st.booleans(),  # aimed at the victim?
            ),
            min_size=1,
            max_size=30,
        ),
        now=st.floats(min_value=0.0, max_value=30.0),
    )
    def test_upstream_filter_train_equals_scalar_fold(self, rows, now):
        """should_drop_batch == n should_drop calls: same verdict per
        frame, same lazy expiries, same final blocklist."""
        victim = 0x0A000002

        def build():
            f = UpstreamFilter(victim_ip=victim)
            f.block(0x0A000100, until=10.0)  # may expire depending on now
            f.block(0x0A000102, until=100.0)  # always live
            expired = []
            f.on_expire = lambda src, until: expired.append(src)
            return f, expired

        batch = PacketBatch.tcp_batch(
            len(rows),
            src_ip=[0x0A000100 + s for s, _ in rows],
            dst_ip=[victim if hit else victim + 1 for _, hit in rows],
            src_port=3000,
            dst_port=80,
            flags=TcpFlags.SYN,
        )
        scalar_f, scalar_expired = build()
        scalar_mask = [
            scalar_f.should_drop(packet, None, now) for packet in batch.packets()
        ]
        batch_f, batch_expired = build()
        result = batch_f.should_drop_batch(batch, None, now)
        batch_mask = (
            [False] * len(rows) if result is None else result.tolist()
        )
        assert batch_mask == scalar_mask
        assert batch_f.dropped == scalar_f.dropped
        assert batch_f.blocked_until == scalar_f.blocked_until
        # Expiry is lazy in both paths; batch dedupes per unique source.
        assert set(batch_expired) == set(scalar_expired)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=20),
        capacity=st.integers(min_value=1, max_value=12),
        prefill=st.integers(min_value=0, max_value=12),
    )
    def test_droptail_queue_train_equals_scalar_fold(self, n, capacity, prefill):
        """enqueue_batch == n enqueue calls: same accepted head, same
        drop count, same drained packet order."""
        prefill = min(prefill, capacity)
        batch = PacketBatch.tcp_batch(
            n,
            src_ip=0x0A000001,
            dst_ip=0x0A000002,
            src_port=list(range(5000, 5000 + n)),
            dst_port=80,
            flags=TcpFlags.SYN,
        )
        seed = PacketBatch.tcp_batch(
            prefill, src_ip=1, dst_ip=2, src_port=4000, dst_port=80,
            flags=TcpFlags.SYN,
        )

        def drain(queue):
            out = []
            while True:
                packet = queue.dequeue()
                if packet is None:
                    return out
                out.append(packet.tcp.src_port)

        scalar_q = DropTailQueue(capacity=capacity)
        scalar_q.enqueue_batch(seed)
        accepted_scalar = sum(
            1 for packet in batch.packets() if scalar_q.enqueue(packet)
        )
        batch_q = DropTailQueue(capacity=capacity)
        batch_q.enqueue_batch(seed)
        accepted_batch = batch_q.enqueue_batch(batch)
        assert accepted_batch == accepted_scalar
        assert batch_q.dropped == scalar_q.dropped
        assert batch_q.enqueued == scalar_q.enqueued
        assert drain(batch_q) == drain(scalar_q)
