"""Scenario / FaultPlan JSON round-trips (campaign grids, cache keys)."""

import json

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.testbed import Scenario


class TestScenarioRoundTrip:
    def test_default_scenario_roundtrips(self):
        scenario = Scenario()
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone == scenario

    def test_roundtrip_through_json_text(self):
        scenario = Scenario(
            n_devices=4, seed=11, window_seconds=2.0, churn_interval=15.0,
            http_weight=0.5, ftp_weight=0.2, rtmp_weight=0.3,
        )
        payload = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(payload) == scenario

    def test_fault_plan_nests(self):
        plan = FaultPlan.of(
            FaultSpec(kind="loss", start=2.0, duration=5.0, rate=0.1),
            FaultSpec(kind="kill", start=8.0, duration=3.0,
                      targets=("dev-0",), restart="on-failure"),
            seed=3,
        )
        scenario = Scenario(n_devices=3, fault_plan=plan)
        payload = scenario.to_dict()
        assert payload["fault_plan"]["seed"] == 3
        clone = Scenario.from_dict(json.loads(json.dumps(payload)))
        assert clone.fault_plan == plan
        assert clone == scenario

    def test_post_init_validation_fires_on_load(self):
        payload = Scenario().to_dict()
        payload["n_devices"] = 0
        with pytest.raises(ValueError, match="at least one device"):
            Scenario.from_dict(payload)
        payload = Scenario().to_dict()
        payload["window_seconds"] = -1.0
        with pytest.raises(ValueError, match="window_seconds"):
            Scenario.from_dict(payload)

    def test_unknown_keys_rejected(self):
        payload = Scenario().to_dict()
        payload["num_devices"] = 6  # typo'd field name
        with pytest.raises(ValueError, match="unknown Scenario field"):
            Scenario.from_dict(payload)

    def test_dict_order_is_stable(self):
        # Canonical-JSON cache keys rely on deterministic content.
        assert list(Scenario().to_dict()) == list(Scenario(seed=99).to_dict())


class TestFaultPlanRoundTrip:
    def test_spec_roundtrip_revalidates(self):
        spec = FaultSpec(kind="partition", start=1.0, duration=2.0, targets=("dev-1",))
        clone = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.targets == ("dev-1",)  # tuple restored, not list
        bad = spec.to_dict()
        bad["duration"] = -1.0
        with pytest.raises(ValueError):
            FaultSpec.from_dict(bad)

    def test_plan_roundtrip(self):
        plan = FaultPlan.of(
            FaultSpec(kind="loss", start=0.0, duration=4.0, rate=0.2),
            seed=5,
        )
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone == plan
