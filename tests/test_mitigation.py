"""Unit tests for the detect → mitigate → recover subsystem.

Covers the :mod:`repro.ids.defense` building blocks in isolation —
conntrack-style blocklist verdicts, SYN-cookie hardening, the upstream
channel ACL, plan/metric serialization, and the controller's fallback
state machine — against one small built testbed.  The end-to-end
defended pipeline lives in ``test_mitigation_pipeline.py``.
"""

import numpy as np
import pytest

from repro.containers.orchestrator import SupervisorEvent
from repro.faults.injector import FaultEvent
from repro.ids import (
    BlocklistFilter,
    MitigationController,
    MitigationEvent,
    MitigationPlan,
    RealTimeIds,
    RecoveryMetrics,
    TokenBucket,
    UpstreamFilter,
    compute_recovery_metrics,
)
from repro.sim import PacketProbe
from repro.sim.packet import PROTO_TCP, PROTO_UDP, Ipv4Header, Packet, TcpHeader, UdpHeader
from repro.sim.tracing import PacketRecord
from repro.testbed import Scenario, Testbed
from repro.testbed.impact import ImpactSample, ImpactSeries, attach_victim_monitor


@pytest.fixture(scope="module")
def testbed():
    built = Testbed(Scenario(n_devices=2, seed=13)).build()
    built.infect_all()
    return built


def tcp_frame(src, dst, sport=40000, dport=80, flags=0, ack=0):
    return Packet(
        ip=Ipv4Header(src=src, dst=dst, protocol=PROTO_TCP),
        tcp=TcpHeader(src_port=sport, dst_port=dport, flags=flags, ack=ack),
    )


def udp_frame(src, dst, sport=40000, dport=9999):
    return Packet(
        ip=Ipv4Header(src=src, dst=dst, protocol=PROTO_UDP),
        udp=UdpHeader(src_port=sport, dst_port=dport),
    )


class TestTokenBucketStartsFull:
    def test_fresh_bucket_starts_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        assert bucket.tokens == 5.0

    def test_first_packets_after_install_pass(self):
        # Regression: a bucket starting empty would drop the first benign
        # SYNs right after the filter is installed.
        bucket = TokenBucket(rate=10.0, burst=5.0)
        assert all(bucket.allow(0.0) for _ in range(5))
        assert not bucket.allow(0.0)

    def test_explicit_tokens_still_honoured(self):
        bucket = TokenBucket(rate=10.0, burst=5.0, tokens=0.0)
        assert not bucket.allow(0.0)


class TestMitigationPlanSerde:
    def test_roundtrip(self):
        plan = MitigationPlan(model="RF", block_seconds=7.5, upstream_after=2)
        assert MitigationPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            MitigationPlan.from_dict({"model": "RF", "bogus": 1})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "attack"},
            {"block_seconds": 0.0},
            {"min_flagged": 0},
            {"syn_rate_limit": -1.0},
            {"syn_cookie_threshold": 0.0},
            {"syn_cookie_threshold": 1.5},
            {"upstream_after": 0},
            {"fallback_staleness": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MitigationPlan(**kwargs)

    def test_scenario_roundtrip_carries_plan(self):
        scenario = Scenario(
            n_devices=2, mitigation_plan=MitigationPlan(mode="monitor")
        )
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt.mitigation_plan == scenario.mitigation_plan
        assert rebuilt == scenario

    def test_scenario_roundtrip_without_plan(self):
        scenario = Scenario(n_devices=2)
        assert Scenario.from_dict(scenario.to_dict()).mitigation_plan is None

    def test_event_and_metrics_roundtrip(self):
        event = MitigationEvent(1.5, "block", detail="10.0.0.3")
        assert MitigationEvent.from_dict(event.to_dict()) == event
        metrics = RecoveryMetrics(
            goodput_retained_pct=80.0,
            time_to_mitigate=1.0,
            time_to_recovery=None,
            collateral_block_rate=0.0,
            blocked_sources=2,
            collateral_blocks=0,
            baseline_goodput=100.0,
            attack_goodput=80.0,
        )
        assert RecoveryMetrics.from_dict(metrics.to_dict()) == metrics
        assert any("goodput" in name for name, _ in metrics.rows())


class TestComputeRecoveryMetrics:
    def series(self, attack_goodput=40.0):
        samples = [ImpactSample(float(t), 10, 1000, 100.0, 0, 0, 0, 0) for t in range(5)]
        samples += [
            ImpactSample(float(t), 10, 1000, attack_goodput, 8, 0, 0, 0)
            for t in range(5, 10)
        ]
        samples += [ImpactSample(float(t), 10, 1000, 100.0, 0, 0, 0, 0) for t in range(10, 15)]
        return ImpactSeries(samples)

    def test_folds_series_and_events(self):
        metrics = compute_recovery_metrics(
            self.series(),
            [MitigationEvent(6.0, "block", "10.0.0.2")],
            [(5.0, 10.0)],
            malicious_srcs={2},
            blocked_srcs={1, 2},
        )
        assert metrics.baseline_goodput == 100.0
        assert metrics.attack_goodput == 40.0
        assert metrics.goodput_retained_pct == 40.0
        assert metrics.time_to_mitigate == 1.0
        # dipped below 50% at t=5, back above at t=10
        assert metrics.time_to_recovery == 5.0
        assert metrics.blocked_sources == 2
        assert metrics.collateral_blocks == 1
        assert metrics.collateral_block_rate == 0.5

    def test_no_mitigation_events_means_no_ttm(self):
        metrics = compute_recovery_metrics(
            self.series(), [], [(5.0, 10.0)], malicious_srcs=set(), blocked_srcs=set()
        )
        assert metrics.time_to_mitigate is None
        assert metrics.collateral_block_rate == 0.0

    def test_goodput_never_dipping_counts_as_instant_recovery(self):
        metrics = compute_recovery_metrics(
            self.series(attack_goodput=90.0),
            [],
            [(5.0, 10.0)],
            malicious_srcs=set(),
            blocked_srcs=set(),
        )
        assert metrics.time_to_recovery == 0.0


class TestConntrackVerdicts:
    """Blocked-source packets are judged iptables-style, not blanket-dropped."""

    @pytest.fixture()
    def filt(self, testbed):
        filt = BlocklistFilter(testbed.tserver.node, block_seconds=60.0)
        yield filt
        filt.uninstall()

    def block(self, testbed, filt, src):
        filt.blocked_until[src.value] = testbed.sim.now + 60.0

    def test_udp_from_blocked_source_dropped(self, testbed, filt):
        victim = testbed.tserver.node
        src = testbed.devices[0].node.address
        self.block(testbed, filt, src)
        assert filt._should_drop(udp_frame(src, victim.address))
        assert filt.dropped_by_blocklist == 1

    def test_bare_syn_counts_as_new_not_invalid(self, testbed, filt):
        victim = testbed.tserver.node
        src = testbed.devices[0].node.address
        self.block(testbed, filt, src)
        syn = tcp_frame(src, victim.address, flags=0x02)
        assert not filt._blocked_verdict(syn)

    def test_out_of_state_ack_dropped(self, testbed, filt):
        victim = testbed.tserver.node
        src = testbed.devices[0].node.address
        self.block(testbed, filt, src)
        ack = tcp_frame(src, victim.address, sport=45555, flags=0x10, ack=999)
        assert filt._should_drop(ack)
        assert filt.dropped_by_blocklist == 1

    def test_established_connection_passes(self, testbed, filt):
        victim = testbed.tserver.node
        src = testbed.devices[0].node.address
        self.block(testbed, filt, src)
        key = (victim.address.value, 80, src.value, 46666)
        victim.tcp.sockets[key] = object()
        try:
            frame = tcp_frame(src, victim.address, sport=46666, flags=0x10, ack=1)
            assert not filt._should_drop(frame)
            assert filt.passed_established == 1
        finally:
            del victim.tcp.sockets[key]

    def test_half_open_completion_passes(self, testbed, filt):
        victim = testbed.tserver.node
        src = testbed.devices[0].node.address
        self.block(testbed, filt, src)
        listener = victim.tcp.listeners[80]
        listener.half_open[(src.value, 47777)] = object()
        try:
            frame = tcp_frame(src, victim.address, sport=47777, flags=0x10, ack=1)
            assert not filt._blocked_verdict(frame)
        finally:
            del listener.half_open[(src.value, 47777)]

    def test_valid_syn_cookie_completion_passes(self, testbed, filt):
        victim = testbed.tserver.node
        src = testbed.devices[0].node.address
        self.block(testbed, filt, src)
        listener = victim.tcp.listeners[80]
        listener.enable_syn_cookies()
        try:
            isn = listener._cookie_isn(src.value, 48888)
            good = tcp_frame(src, victim.address, sport=48888, flags=0x10, ack=isn + 1)
            bad = tcp_frame(src, victim.address, sport=48888, flags=0x10, ack=isn + 2)
            assert not filt._blocked_verdict(good)
            assert filt._blocked_verdict(bad)
        finally:
            listener.disable_syn_cookies()

    def test_blocked_devices_keep_serving_benign_sessions(self, testbed):
        """Blocking a compromised device must not sever its benign traffic."""
        victim = testbed.tserver.node
        filt = BlocklistFilter(victim, block_seconds=120.0).install()
        monitor = attach_victim_monitor(testbed.tserver)
        now = testbed.sim.now
        for device in testbed.devices:
            filt.blocked_until[device.node.address.value] = now + 120.0
        testbed.cnc.launch_attack(
            "udp", victim.address, 80, duration=4.0, pps=100
        )
        testbed.sim.run(until=now + 8.0)
        monitor.stop()
        filt.uninstall()
        assert filt.dropped_by_blocklist > 200  # the flood died at the filter
        assert filt.passed_established > 0  # live sessions kept flowing
        assert monitor.series.mean_goodput() > 0  # and were actually served

    def test_expiry_fires_on_expire_callback(self, testbed):
        filt = BlocklistFilter(testbed.tserver.node, block_seconds=1.0)
        expired = []
        filt.on_expire = lambda src, until: expired.append((src, until))
        now = testbed.sim.now
        filt.blocked_until[424242] = now - 1.0
        frame = udp_frame(testbed.devices[0].node.address, testbed.tserver.node.address)
        # A packet from an unrelated source does not touch the table;
        # prune (the controller's periodic sweep) reports the expiry.
        assert not filt._should_drop(frame)
        assert filt.prune(now) == [(424242, now - 1.0)]
        assert expired == [(424242, now - 1.0)]
        assert 424242 not in filt.blocked_until

    def test_ttl_grace_keeps_expired_entries_enforced(self, testbed):
        filt = BlocklistFilter(testbed.tserver.node)
        src = testbed.devices[0].node.address
        now = testbed.sim.now
        filt.blocked_until[src.value] = now - 5.0  # expired...
        filt.ttl_grace = 10.0  # ...but inside fallback grace
        assert filt._should_drop(udp_frame(src, testbed.tserver.node.address))
        assert filt.prune(now) == []  # grace also defers the sweep
        filt.ttl_grace = 0.0
        assert len(filt.prune(now)) == 1

    def test_reblock_after_expiry(self, testbed):
        filt = BlocklistFilter(testbed.tserver.node)
        now = testbed.sim.now
        assert filt.block(555, now + 1.0)  # new entry
        assert not filt.block(555, now + 2.0)  # refresh, not new
        filt.prune(now + 10.0)
        assert filt.block(555, now + 20.0)  # new again after expiry


class TestSynCookies:
    @pytest.fixture()
    def listener(self, testbed):
        listener = testbed.tserver.node.tcp.listen(8888, lambda sock: None, backlog=8)
        yield listener
        listener.close()  # also deregisters port 8888 from the stack

    def syn(self, testbed, sport):
        src = testbed.devices[0].node.address
        return tcp_frame(src, testbed.tserver.node.address, sport=sport, dport=8888, flags=0x02)

    def test_stateless_above_watermark(self, testbed, listener):
        listener.enable_syn_cookies(threshold=0.5)
        for sport in range(50000, 50020):
            listener.handle_syn(self.syn(testbed, sport))
        # Half the backlog fills statefully; the rest is answered with
        # cookies and never consumes a slot.
        assert len(listener.half_open) == listener._cookie_watermark == 4
        assert listener.syn_cookies_sent == 16
        assert listener.syn_dropped == 0

    def test_backlog_exhausts_without_cookies(self, testbed, listener):
        for sport in range(51000, 51020):
            listener.handle_syn(self.syn(testbed, sport))
        assert len(listener.half_open) == listener.backlog == 8
        assert listener.syn_dropped == 12

    def test_valid_cookie_ack_promotes(self, testbed, listener):
        listener.enable_syn_cookies(threshold=0.5)
        src = testbed.devices[0].node.address
        victim = testbed.tserver.node
        for sport in range(52000, 52008):  # past the watermark
            listener.handle_syn(self.syn(testbed, sport))
        isn = listener._cookie_isn(src.value, 52100)
        ack = tcp_frame(src, victim.address, sport=52100, dport=8888, flags=0x10, ack=isn + 1)
        sock = listener.handle_ack(ack)
        assert sock is not None
        assert listener.syn_cookies_accepted == 1
        sock.abort()

    def test_invalid_cookie_ack_rejected(self, testbed, listener):
        listener.enable_syn_cookies(threshold=0.5)
        src = testbed.devices[0].node.address
        victim = testbed.tserver.node
        for sport in range(53000, 53008):
            listener.handle_syn(self.syn(testbed, sport))
        bad = tcp_frame(src, victim.address, sport=53100, dport=8888, flags=0x10, ack=12345)
        assert listener.handle_ack(bad) is None
        assert listener.syn_cookies_rejected == 1

    def test_cookie_isn_is_deterministic_and_nonzero(self, testbed, listener):
        listener.enable_syn_cookies(secret=99)
        a = listener._cookie_isn(0x0A000002, 1234)
        assert a == listener._cookie_isn(0x0A000002, 1234)
        assert a != listener._cookie_isn(0x0A000002, 1235)
        assert a != 0


class TestUpstreamFilter:
    def test_drops_only_blocked_to_victim(self):
        victim, bot, other = 0x0A000063, 0x0A000002, 0x0A000003
        filt = UpstreamFilter(victim_ip=victim)
        filt.block(bot, until=100.0)
        from repro.sim.address import Ipv4Address

        flood = udp_frame(Ipv4Address(bot), Ipv4Address(victim))
        lateral = udp_frame(Ipv4Address(bot), Ipv4Address(other))
        clean = udp_frame(Ipv4Address(other), Ipv4Address(victim))
        assert filt.should_drop(flood, None, now=10.0)
        assert not filt.should_drop(lateral, None, now=10.0)
        assert not filt.should_drop(clean, None, now=10.0)
        assert filt.dropped == 1

    def test_expiry_reopens_path(self):
        from repro.sim.address import Ipv4Address

        filt = UpstreamFilter(victim_ip=0x0A000063)
        expired = []
        filt.on_expire = lambda src, until: expired.append(src)
        filt.block(0x0A000002, until=5.0)
        frame = udp_frame(Ipv4Address(0x0A000002), Ipv4Address(0x0A000063))
        assert filt.should_drop(frame, None, now=4.0)
        assert not filt.should_drop(frame, None, now=6.0)  # lazily expired
        assert expired == [0x0A000002]
        assert filt.active_blocks == 0

    def test_channel_enforces_acl_on_live_flood(self, testbed):
        channel = testbed.lan.channel
        victim = testbed.tserver.node
        filt = UpstreamFilter(victim_ip=victim.address.value)
        now = testbed.sim.now
        for device in testbed.devices:
            filt.block(device.node.address.value, until=now + 60.0)
        filtered_before = channel.frames_filtered
        channel.set_traffic_filter(filt)
        try:
            testbed.cnc.launch_attack("udp", victim.address, 80, duration=3.0, pps=100)
            testbed.sim.run(until=now + 4.0)
        finally:
            channel.set_traffic_filter(None)
        assert channel.traffic_filter is None
        assert filt.dropped > 100
        assert channel.frames_filtered - filtered_before == filt.dropped


class TestProbeSymmetry:
    def test_lan_add_remove_probe_roundtrip(self, testbed):
        probe = PacketProbe(keep_records=False)
        testbed.lan.add_probe(probe)
        testbed.sim.run(until=testbed.sim.now + 2.0)
        seen = probe.count
        assert seen > 0
        testbed.lan.remove_probe(probe)
        testbed.sim.run(until=testbed.sim.now + 2.0)
        assert probe.count == seen  # detached probes stop counting


def record(ts, src, label=1, proto=PROTO_UDP, dport=9999):
    return PacketRecord(ts, src, 99, proto, 40000, dport, 60, 0, 0, label)


class FlagEverything:
    def predict(self, X):
        return np.ones(len(X), dtype=int)


class FlagNothing:
    def predict(self, X):
        return np.zeros(len(X), dtype=int)


def make_controller(testbed, model, **plan_kwargs):
    plan = MitigationPlan(model="toy", **plan_kwargs)
    victim = testbed.tserver.node
    filter_ = None
    upstream = None
    if plan.mode == "mitigate":
        filter_ = BlocklistFilter(victim, block_seconds=plan.block_seconds)
        upstream = UpstreamFilter(victim_ip=victim.address.value)
    ids = RealTimeIds(model, "toy")
    controller = MitigationController(
        plan=plan,
        sim=testbed.sim,
        victim=victim,
        ids=ids,
        filter_=filter_,
        upstream=upstream,
    )
    return controller, ids


class TestControllerVerdicts:
    def test_flagged_window_blocks_and_escalates(self, testbed):
        controller, ids = make_controller(
            testbed, FlagEverything(), min_flagged=10, upstream_after=2
        )
        base = testbed.sim.now
        ids.monitor.replay([record(base + i * 0.05, src=777) for i in range(20)])
        ids.monitor.replay([record(base + 1.0 + i * 0.05, src=777) for i in range(20)])
        ids.finish()
        actions = [e.action for e in controller.events]
        assert "block" in actions
        assert "escalate" in actions
        assert 777 in controller.filter.blocked_until
        assert 777 in controller.upstream.blocked_until
        assert controller.blocks_issued == 1
        assert 777 in controller.malicious_srcs

    def test_below_threshold_sources_not_blocked(self, testbed):
        controller, ids = make_controller(testbed, FlagEverything(), min_flagged=10)
        base = testbed.sim.now
        ids.process([record(base + i * 0.05, src=888) for i in range(5)])
        assert controller.blocks_issued == 0
        assert not controller.filter.blocked_until

    def test_clean_window_unblocks_false_positive(self, testbed):
        controller, ids = make_controller(testbed, FlagNothing(), min_flagged=10)
        src = 999
        controller.filter.block(src, testbed.sim.now + 60.0)
        controller.blocked_ever.add(src)
        base = testbed.sim.now
        ids.process([record(base + i * 0.05, src=src, label=0) for i in range(20)])
        assert controller.unblocks == 1
        assert src not in controller.filter.blocked_until
        assert [e.action for e in controller.events].count("unblock") == 1

    def test_monitor_mode_never_filters(self, testbed):
        controller, ids = make_controller(testbed, FlagEverything(), mode="monitor")
        assert controller.filter is None and controller.upstream is None
        base = testbed.sim.now
        ids.process([record(base + i * 0.05, src=777) for i in range(20)])
        assert controller.blocks_issued == 0
        # it still *observes*: the verdict event fires, and ground truth
        # accumulates for collateral accounting
        assert any(e.action == "verdict" for e in controller.events)
        assert 777 in controller.malicious_srcs


class TestControllerFallback:
    def test_ids_kill_enters_fallback(self, testbed):
        controller, _ = make_controller(testbed, FlagEverything())
        controller.on_supervisor_event(SupervisorEvent(1.0, "ids", "kill"))
        assert controller.in_fallback
        assert controller.filter.ttl_grace == controller.plan.fallback_staleness
        assert controller.upstream.ttl_grace == controller.plan.fallback_staleness
        assert controller.events[-1].action == "fallback.enter"

    def test_other_container_ignored(self, testbed):
        controller, _ = make_controller(testbed, FlagEverything())
        controller.on_supervisor_event(SupervisorEvent(1.0, "dev-0", "kill"))
        assert not controller.in_fallback

    def test_restart_exits_and_resyncs_stale_policy(self, testbed):
        controller, _ = make_controller(testbed, FlagEverything())
        stale_until = 2.0
        controller.filter.block(4242, until=stale_until)
        controller.on_supervisor_event(SupervisorEvent(1.0, "ids", "kill"))
        # While down, the stale entry is held past its TTL.
        assert controller.filter.prune(stale_until + 1.0) == []
        controller.on_supervisor_event(SupervisorEvent(20.0, "ids", "restart"))
        assert not controller.in_fallback
        assert controller.filter.ttl_grace == 0.0
        assert 4242 not in controller.filter.blocked_until  # resync pruned it
        actions = [e.action for e in controller.events]
        assert "fallback.exit" in actions and "resync" in actions and "expire" in actions
        resync = next(e for e in controller.events if e.action == "resync")
        assert resync.value == 1.0

    def test_partition_of_ids_link_enters_fallback(self, testbed):
        controller, _ = make_controller(testbed, FlagEverything())
        controller.on_fault_event(FaultEvent(2.0, "partition", "partition", ("ids",)))
        assert controller.in_fallback
        controller.on_fault_event(FaultEvent(3.0, "heal", "partition", ("ids",)))
        assert not controller.in_fallback

    def test_partition_of_other_target_ignored(self, testbed):
        controller, _ = make_controller(testbed, FlagEverything())
        controller.on_fault_event(FaultEvent(2.0, "partition", "partition", ("tserver",)))
        assert not controller.in_fallback

    def test_wildcard_partition_counts(self, testbed):
        controller, _ = make_controller(testbed, FlagEverything())
        controller.on_fault_event(FaultEvent(2.0, "partition", "partition", ("*",)))
        assert controller.in_fallback

    def test_overlapping_reasons_need_both_to_clear(self, testbed):
        controller, _ = make_controller(testbed, FlagEverything())
        controller.on_supervisor_event(SupervisorEvent(1.0, "ids", "kill"))
        controller.on_fault_event(FaultEvent(2.0, "partition", "partition", ("ids",)))
        assert controller.fallback_entries == 1  # one outage, two causes
        controller.on_fault_event(FaultEvent(3.0, "heal", "partition", ("ids",)))
        assert controller.in_fallback  # container still down
        controller.on_supervisor_event(SupervisorEvent(4.0, "ids", "restart"))
        assert not controller.in_fallback
        assert [e.action for e in controller.events].count("fallback.enter") == 1


class TestInstallUninstall:
    class Trained:
        name = "toy"
        model = FlagEverything()
        extractor = None
        scaler = None

    def test_install_uninstall_restores_node(self, testbed):
        victim = testbed.tserver.node
        receive_before = victim.receive
        filter_before = testbed.lan.channel.traffic_filter
        plan = MitigationPlan(model="toy")
        controller = testbed.install_mitigation(plan, self.Trained())
        assert testbed.mitigation is controller
        assert victim.receive != receive_before
        assert testbed.lan.channel.traffic_filter is controller.upstream
        assert all(
            listener.syn_cookies_enabled for listener in victim.tcp.listeners.values()
        )
        back = testbed.uninstall_mitigation()
        assert back is controller
        assert testbed.mitigation is None
        assert victim.receive == receive_before
        assert testbed.lan.channel.traffic_filter is filter_before
        assert not any(
            listener.syn_cookies_enabled for listener in victim.tcp.listeners.values()
        )
        assert testbed.uninstall_mitigation() is None  # idempotent

    def test_double_install_rejected(self, testbed):
        from repro.testbed.builder import TestbedError

        testbed.install_mitigation(MitigationPlan(model="toy"), self.Trained())
        try:
            with pytest.raises(TestbedError, match="already installed"):
                testbed.install_mitigation(MitigationPlan(model="toy"), self.Trained())
        finally:
            testbed.uninstall_mitigation()

    def test_monitor_mode_leaves_datapath_untouched(self, testbed):
        victim = testbed.tserver.node
        receive_before = victim.receive
        controller = testbed.install_mitigation(
            MitigationPlan(model="toy", mode="monitor"), self.Trained()
        )
        assert victim.receive == receive_before  # no filter interposed
        assert testbed.lan.channel.traffic_filter is None
        assert controller.filter is None
        testbed.uninstall_mitigation()
