"""Tests for basic features, window statistics, and the extractor."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.features import (
    BASIC_FEATURE_NAMES,
    FeatureExtractor,
    STATISTICAL_FEATURE_NAMES,
    WindowAggregator,
    basic_features,
    compute_window_statistics,
    iter_windows,
    shannon_entropy,
)
from repro.features.statistical import WindowStatistics
from repro.sim.packet import PROTO_TCP, PROTO_UDP, TcpFlags
from repro.sim.tracing import PacketRecord


def record(
    ts=0.0,
    src=1,
    dst=2,
    sport=1000,
    dport=80,
    proto=PROTO_TCP,
    flags=int(TcpFlags.ACK),
    size=60,
    seq=0,
    label=0,
):
    return PacketRecord(ts, src, dst, proto, sport, dport, size, flags, seq, label)


def syn(ts=0.0, src=1, dst=2, sport=1000, dport=80, seq=0):
    return record(ts, src, dst, sport, dport, flags=int(TcpFlags.SYN), seq=seq)


class TestShannonEntropy:
    def test_uniform_distribution_max_entropy(self):
        assert shannon_entropy([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_single_value_zero_entropy(self):
        assert shannon_entropy([10]) == 0.0

    def test_empty_is_zero(self):
        assert shannon_entropy([]) == 0.0
        assert shannon_entropy([0, 0]) == 0.0

    @given(st.lists(st.integers(1, 100), min_size=1, max_size=30))
    def test_property_bounds(self, counts):
        entropy = shannon_entropy(counts)
        assert 0.0 <= entropy <= math.log2(len(counts)) + 1e-9


class TestBasicFeatures:
    def test_vector_matches_names(self):
        vec = basic_features(record())
        assert len(vec) == len(BASIC_FEATURE_NAMES)

    def test_values(self):
        vec = basic_features(record(sport=1234, dport=53))
        names = list(BASIC_FEATURE_NAMES)
        assert vec[names.index("src_port")] == 1234
        assert vec[names.index("dst_port")] == 53
        assert vec[names.index("protocol")] == 6

    def test_detail_values(self):
        from repro.features.basic import basic_feature_names

        vec = basic_features(record(size=99), include_details=True)
        names = list(basic_feature_names(include_details=True))
        assert vec[names.index("size")] == 99
        assert vec[names.index("is_ack")] == 1.0
        assert vec[names.index("is_syn")] == 0.0

    def test_include_ips_prepends(self):
        vec = basic_features(record(src=7, dst=9), include_ips=True)
        assert vec[0] == 7.0 and vec[1] == 9.0
        assert len(vec) == len(BASIC_FEATURE_NAMES) + 2

    def test_timestamp_first_and_removable(self):
        vec = basic_features(record(ts=3.5))
        assert vec[0] == 3.5
        vec_no_ts = basic_features(record(ts=3.5), include_timestamp=False)
        assert len(vec_no_ts) == len(vec) - 1

    def test_seq_normalized(self):
        from repro.features.basic import basic_feature_names

        vec = basic_features(record(seq=2**31), include_details=True)
        names = list(basic_feature_names(include_details=True))
        assert vec[names.index("seq_norm")] == pytest.approx(0.5)


class TestWindowStatistics:
    def test_empty_window_is_zeros(self):
        stats = compute_window_statistics([])
        assert stats == WindowStatistics.zeros()
        assert (stats.to_array() == 0).all()

    def test_packet_and_byte_counts(self):
        stats = compute_window_statistics([record(size=100), record(size=50)])
        assert stats.pkt_count == 2
        assert stats.byte_count == 150
        assert stats.mean_size == 75

    def test_dport_entropy_uniform_vs_concentrated(self):
        spread = [record(dport=p) for p in range(16)]
        focused = [record(dport=80) for _ in range(16)]
        assert compute_window_statistics(spread).dport_entropy == pytest.approx(4.0)
        assert compute_window_statistics(focused).dport_entropy == 0.0

    def test_top_dport_fraction(self):
        packets = [record(dport=80)] * 3 + [record(dport=53)]
        assert compute_window_statistics(packets).top_dport_fraction == pytest.approx(0.75)

    def test_syn_without_ack_counts_half_handshakes(self):
        # src 1 completes a handshake (SYN then ACK); src 5 only SYNs.
        packets = [
            syn(src=1, dst=2, dport=80),
            record(src=1, dst=2, dport=80, flags=int(TcpFlags.ACK)),
            syn(src=5, dst=2, dport=80),
            syn(src=6, dst=2, dport=80),
        ]
        stats = compute_window_statistics(packets)
        assert stats.syn_count == 3
        assert stats.syn_without_ack == 2

    def test_repeated_connection_attempts(self):
        packets = [
            syn(src=1, sport=100, dport=80),
            syn(src=1, sport=101, dport=80),  # same (src, dst, dport) again
            syn(src=2, sport=102, dport=80),
        ]
        assert compute_window_statistics(packets).repeated_conn_attempts == 1

    def test_short_lived_connections(self):
        packets = [
            syn(src=1, sport=100, dport=80),
            record(src=1, sport=100, dport=80, flags=int(TcpFlags.FIN | TcpFlags.ACK)),
            syn(src=2, sport=200, dport=80),  # opened but never closed
        ]
        assert compute_window_statistics(packets).short_lived_conns == 1

    def test_udp_fraction(self):
        packets = [record(proto=PROTO_UDP, flags=0)] * 3 + [record()]
        assert compute_window_statistics(packets).udp_fraction == pytest.approx(0.75)

    def test_flow_rate_scales_with_window(self):
        packets = [record(sport=p) for p in range(10)]
        assert compute_window_statistics(packets, 1.0).flow_rate == 10.0
        assert compute_window_statistics(packets, 2.0).flow_rate == 5.0

    def test_seq_std_zero_for_constant(self):
        packets = [record(seq=1000)] * 5
        assert compute_window_statistics(packets).seq_std == 0.0

    def test_seq_std_high_for_random_floods(self):
        rng = np.random.default_rng(0)
        packets = [record(seq=int(s)) for s in rng.integers(0, 2**32, 50)]
        assert compute_window_statistics(packets).seq_std > 0.2

    def test_unique_counts(self):
        packets = [record(src=i % 3, dport=i % 5) for i in range(15)]
        stats = compute_window_statistics(packets)
        assert stats.unique_src == 3
        assert stats.unique_dst_ports == 5

    def test_array_matches_names(self):
        array = compute_window_statistics([record()]).to_array()
        assert len(array) == len(STATISTICAL_FEATURE_NAMES)


class TestIterWindows:
    def test_assigns_by_floor_division(self):
        records = [record(ts=t) for t in (0.1, 0.9, 1.1, 2.5)]
        windows = dict(iter_windows(records, 1.0))
        assert sorted(windows) == [0, 1, 2]
        assert len(windows[0]) == 2

    def test_empty_windows_skipped(self):
        records = [record(ts=0.5), record(ts=5.5)]
        indices = [i for i, _ in iter_windows(records, 1.0)]
        assert indices == [0, 5]

    def test_custom_window_size(self):
        records = [record(ts=t) for t in (0.0, 0.4, 0.6)]
        windows = dict(iter_windows(records, 0.5))
        assert sorted(windows) == [0, 1]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            list(iter_windows([], 0.0))

    def test_unsorted_input_matches_sorted(self):
        """The ordering guard: a jittered capture groups identically to
        its sorted counterpart instead of splitting/mislabeling windows."""
        rng = np.random.default_rng(9)
        times = rng.uniform(0, 5, 60)
        records = [record(ts=float(t), sport=i) for i, t in enumerate(times)]
        records_sorted = sorted(records, key=lambda r: r.timestamp)
        unsorted_windows = {
            i: sorted(r.src_port for r in bucket)
            for i, bucket in iter_windows(records, 1.0)
        }
        sorted_windows = {
            i: sorted(r.src_port for r in bucket)
            for i, bucket in iter_windows(records_sorted, 1.0)
        }
        assert unsorted_windows == sorted_windows
        assert sorted(unsorted_windows) == list(unsorted_windows)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_property_no_packet_lost(self, times):
        records = [record(ts=t) for t in sorted(times)]
        total = sum(len(bucket) for _, bucket in iter_windows(records, 1.0))
        assert total == len(records)


class TestWindowAggregator:
    def test_streams_completed_windows(self):
        emitted = []
        agg = WindowAggregator(1.0, lambda i, recs: emitted.append((i, len(recs))))
        for t in (0.1, 0.5, 1.2, 2.7):
            agg.add(record(ts=t))
        assert emitted == [(0, 2), (1, 1)]
        agg.flush()
        assert emitted == [(0, 2), (1, 1), (2, 1)]

    def test_flush_idempotent(self):
        emitted = []
        agg = WindowAggregator(1.0, lambda i, recs: emitted.append(i))
        agg.add(record(ts=0.0))
        agg.flush()
        agg.flush()
        assert emitted == [0]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowAggregator(-1.0, lambda i, r: None)
        with pytest.raises(ValueError):
            WindowAggregator(1.0, lambda i, r: None, reorder_horizon=-0.5)

    def test_reordered_record_filed_into_true_window(self):
        """An out-of-order record inside the horizon lands in its own
        window, not whichever bucket happened to be open."""
        emitted = {}
        agg = WindowAggregator(
            1.0, lambda i, recs: emitted.__setitem__(i, recs), reorder_horizon=0.5
        )
        for t in (0.2, 1.1, 0.8, 1.4, 2.9):  # 0.8 arrives late
            agg.add(record(ts=t))
        agg.flush()
        assert sorted(emitted) == [0, 1, 2]
        assert [r.timestamp for r in emitted[0]] == [0.2, 0.8]
        assert [r.timestamp for r in emitted[1]] == [1.1, 1.4]
        assert agg.records_reordered == 1
        assert agg.records_dropped_late == 0

    def test_jittered_stream_matches_sorted_assignment(self):
        rng = np.random.default_rng(12)
        times = np.sort(rng.uniform(0, 6, 120))
        jittered = times + rng.uniform(-0.3, 0.3, 120)  # bounded reorder
        order = np.argsort(times, kind="stable")

        def run(stream_times, horizon):
            emitted = {}
            agg = WindowAggregator(
                1.0,
                lambda i, recs: emitted.__setitem__(i, [r.src_port for r in recs]),
                reorder_horizon=horizon,
            )
            for sport, t in stream_times:
                agg.add(record(ts=max(0.0, float(t)), sport=sport))
            agg.flush()
            return emitted, agg

        # Identity of each record is its src_port; deliver in jittered
        # arrival order vs sorted order and compare window assignment.
        arrival = sorted(enumerate(jittered), key=lambda item: item[1])
        by_jittered_arrival = [
            (i, max(0.0, float(times[i]))) for i, _ in arrival
        ]
        by_sorted = [(int(i), max(0.0, float(times[i]))) for i in order]
        jittered_windows, agg = run(by_jittered_arrival, horizon=0.6)
        sorted_windows, _ = run(by_sorted, horizon=0.0)
        assert {k: sorted(v) for k, v in jittered_windows.items()} == {
            k: sorted(v) for k, v in sorted_windows.items()
        }
        assert agg.records_dropped_late == 0

    def test_too_late_record_dropped_with_counter(self):
        emitted = []
        agg = WindowAggregator(1.0, lambda i, recs: emitted.append((i, len(recs))))
        agg.add(record(ts=0.5))
        agg.add(record(ts=3.2))  # emits window 0
        agg.add(record(ts=0.7))  # window 0 already emitted: dropped
        agg.flush()
        assert agg.records_dropped_late == 1
        assert emitted == [(0, 1), (3, 1)]

    def test_emission_order_strictly_increasing_under_jitter(self):
        indices = []
        agg = WindowAggregator(
            1.0, lambda i, recs: indices.append(i), reorder_horizon=0.5
        )
        rng = np.random.default_rng(7)
        times = rng.uniform(0, 10, 200)
        times = np.clip(np.sort(times) + rng.uniform(-0.4, 0.4, 200), 0, None)
        for t in times:
            agg.add(record(ts=float(t)))
        agg.flush()
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)

    def test_no_packet_lost_or_duplicated_within_horizon(self):
        counts = []
        agg = WindowAggregator(
            1.0, lambda i, recs: counts.append(len(recs)), reorder_horizon=1.0
        )
        rng = np.random.default_rng(3)
        # Jitter of ±0.4 displaces a timestamp at most 0.8s behind the
        # stream maximum, so a 1.0s horizon must lose nothing.
        times = np.clip(np.sort(rng.uniform(0, 5, 80)) + rng.uniform(-0.4, 0.4, 80), 0, None)
        for t in times:
            agg.add(record(ts=float(t)))
        agg.flush()
        assert sum(counts) + agg.records_dropped_late == 80
        assert agg.records_dropped_late == 0  # horizon covers the jitter


class TestFeatureExtractor:
    def make_capture(self):
        rng = np.random.default_rng(1)
        records = []
        for t in np.sort(rng.uniform(0, 5, 200)):
            records.append(record(ts=float(t), sport=int(rng.integers(1024, 60000))))
        return records

    def test_matrix_shape(self):
        extractor = FeatureExtractor(window_seconds=1.0)
        X, y, windows = extractor.transform(self.make_capture())
        assert X.shape == (200, extractor.n_features)
        assert len(y) == 200
        assert len(windows) == 200

    def test_statistics_identical_within_window(self):
        """The paper's design: window stats repeat for every packet."""
        extractor = FeatureExtractor(window_seconds=1.0)
        X, _, windows = extractor.transform(self.make_capture())
        n_basic = len(BASIC_FEATURE_NAMES)
        for w in np.unique(windows):
            block = X[windows == w, n_basic:]
            assert (block == block[0]).all()

    def test_without_statistics(self):
        extractor = FeatureExtractor(stat_set="none")
        X, _, _ = extractor.transform(self.make_capture())
        assert X.shape[1] == len(BASIC_FEATURE_NAMES)

    def test_with_ips(self):
        from repro.features.statistical import PAPER_STATISTICAL_FEATURE_NAMES

        extractor = FeatureExtractor(include_ips=True)
        assert extractor.n_features == len(BASIC_FEATURE_NAMES) + 2 + len(
            PAPER_STATISTICAL_FEATURE_NAMES
        )

    def test_stat_set_variants(self):
        from repro.features.statistical import (
            NORMALIZED_STATISTICAL_FEATURE_NAMES,
            PAPER_STATISTICAL_FEATURE_NAMES,
        )

        paper = FeatureExtractor(stat_set="paper")
        normalized = FeatureExtractor(stat_set="normalized")
        extended = FeatureExtractor(stat_set="extended")
        assert paper.stat_names == PAPER_STATISTICAL_FEATURE_NAMES
        assert normalized.stat_names == NORMALIZED_STATISTICAL_FEATURE_NAMES
        assert extended.stat_names == STATISTICAL_FEATURE_NAMES
        explicit = FeatureExtractor(stat_set=("pkt_count", "seq_std"))
        assert explicit.stat_names == ("pkt_count", "seq_std")

    def test_unknown_stat_set_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            FeatureExtractor(stat_set="bogus")
        with _pytest.raises(ValueError):
            FeatureExtractor(stat_set=("no_such_stat",))

    def test_empty_capture(self):
        extractor = FeatureExtractor()
        X, y, windows = extractor.transform([])
        assert X.shape == (0, extractor.n_features)
        assert len(y) == 0

    def test_transform_window_matches_transform(self):
        records = [record(ts=0.1), record(ts=0.2), syn(ts=0.3)]
        extractor = FeatureExtractor()
        from_stream = extractor.transform_window(records)
        from_batch, _, _ = extractor.transform(records)
        np.testing.assert_allclose(from_stream, from_batch)

    def test_labels_preserved(self):
        records = [record(ts=0.1, label=0), record(ts=0.2, label=1)]
        _, y, _ = FeatureExtractor().transform(records)
        assert y.tolist() == [0, 1]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor(window_seconds=0)
