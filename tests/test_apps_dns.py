"""Tests for benign UDP chatter (DNS/NTP)."""

import pytest

from repro.apps import DnsServer, NtpServer, UdpChatter
from repro.containers import Image, Orchestrator
from repro.sim import CsmaLan, PacketProbe, Simulator


@pytest.fixture()
def env():
    sim = Simulator()
    lan = CsmaLan(sim)
    orch = Orchestrator(sim, lan)
    tserver = orch.run("tserver", Image("ts"))
    dev = orch.run("dev", Image("dev"))
    return sim, lan, tserver, dev


def test_dns_query_answered(env):
    sim, lan, tserver, dev = env
    dns = tserver.exec(DnsServer())
    chatter = dev.exec(
        UdpChatter(tserver.node.address, mean_dns_interval=0.5, seed=1)
    )
    sim.run(until=20.0)
    assert dns.queries_answered > 10
    assert chatter.responses_received > 10


def test_ntp_sync_answered(env):
    sim, lan, tserver, dev = env
    ntp = tserver.exec(NtpServer())
    chatter = dev.exec(
        UdpChatter(tserver.node.address, mean_dns_interval=1e9, mean_ntp_interval=2.0, seed=2)
    )
    sim.run(until=30.0)
    assert ntp.requests_answered >= 5


def test_chatter_traffic_is_benign_udp(env):
    sim, lan, tserver, dev = env
    probe = lan.add_probe(PacketProbe())
    tserver.exec(DnsServer())
    tserver.exec(NtpServer())
    dev.exec(UdpChatter(tserver.node.address, mean_dns_interval=0.5, seed=3))
    sim.run(until=10.0)
    assert probe.count > 5
    assert all(r.label == 0 for r in probe.records)
    assert all(r.is_udp for r in probe.records)
    dports = {r.dst_port for r in probe.records}
    assert 53 in dports


def test_chatter_stop_halts_queries(env):
    sim, lan, tserver, dev = env
    tserver.exec(DnsServer())
    chatter = dev.exec(UdpChatter(tserver.node.address, mean_dns_interval=0.2, seed=4))
    sim.run(until=5.0)
    count = chatter.queries_sent
    chatter.stop()
    sim.run(until=20.0)
    assert chatter.queries_sent == count


def test_deterministic_by_seed(env):
    sim, lan, tserver, dev = env
    a = UdpChatter(tserver.node.address, seed=5)
    b = UdpChatter(tserver.node.address, seed=5)
    assert a.rng.random() == b.rng.random()
