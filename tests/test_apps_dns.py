"""Tests for benign UDP chatter (DNS/NTP)."""

import pytest

from repro.apps import DnsServer, NtpServer, UdpChatter
from repro.apps.dns import DNS_PORT, NTP_PORT
from repro.containers import Image, Orchestrator
from repro.sim import CsmaLan, PacketProbe, Simulator


@pytest.fixture()
def env():
    sim = Simulator()
    lan = CsmaLan(sim)
    orch = Orchestrator(sim, lan)
    tserver = orch.run("tserver", Image("ts"))
    dev = orch.run("dev", Image("dev"))
    return sim, lan, tserver, dev


def test_dns_query_answered(env):
    sim, lan, tserver, dev = env
    dns = tserver.exec(DnsServer())
    chatter = dev.exec(
        UdpChatter(tserver.node.address, mean_dns_interval=0.5, seed=1)
    )
    sim.run(until=20.0)
    assert dns.queries_answered > 10
    assert chatter.responses_received > 10


def test_ntp_sync_answered(env):
    sim, lan, tserver, dev = env
    ntp = tserver.exec(NtpServer())
    chatter = dev.exec(
        UdpChatter(tserver.node.address, mean_dns_interval=1e9, mean_ntp_interval=2.0, seed=2)
    )
    sim.run(until=30.0)
    assert ntp.requests_answered >= 5


def test_chatter_traffic_is_benign_udp(env):
    sim, lan, tserver, dev = env
    probe = lan.add_probe(PacketProbe())
    tserver.exec(DnsServer())
    tserver.exec(NtpServer())
    dev.exec(UdpChatter(tserver.node.address, mean_dns_interval=0.5, seed=3))
    sim.run(until=10.0)
    assert probe.count > 5
    assert all(r.label == 0 for r in probe.records)
    assert all(r.is_udp for r in probe.records)
    dports = {r.dst_port for r in probe.records}
    assert 53 in dports


def test_chatter_stop_halts_queries(env):
    sim, lan, tserver, dev = env
    tserver.exec(DnsServer())
    chatter = dev.exec(UdpChatter(tserver.node.address, mean_dns_interval=0.2, seed=4))
    sim.run(until=5.0)
    count = chatter.queries_sent
    chatter.stop()
    sim.run(until=20.0)
    assert chatter.queries_sent == count


def test_deterministic_by_seed(env):
    sim, lan, tserver, dev = env
    a = UdpChatter(tserver.node.address, seed=5)
    b = UdpChatter(tserver.node.address, seed=5)
    assert a.rng.random() == b.rng.random()


# ---------------------------------------------------------------------------
# Look-ahead tick bit-exactness: the anchored ticker is a pure batching /
# look-ahead knob.  Scalar emissions keep their exact Poisson arrival
# instants for ANY tick, batch mode emits the same contents as trains,
# and both modes consume the RNG identically.
# ---------------------------------------------------------------------------


class _RecordingChatter(UdpChatter):
    """UdpChatter that logs every emission as (time, port, length, tag)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.emitted = []

    def _emit_one(self, port, length, tag):
        self.emitted.append((self.sim.now, port, length, tag))
        super()._emit_one(port, length, tag)

    def _emit_train(self, ports, lengths, tags):
        self.emitted.extend(
            (self.sim.now, p, ln, t) for p, ln, t in zip(ports, lengths, tags)
        )
        super()._emit_train(ports, lengths, tags)


def _run_chatter(seed, *, batch, tick=None, until=40.0, delay=0.25):
    import random as _random

    from repro.sim import Simulator, CsmaLan
    from repro.containers import Image, Orchestrator

    sim = Simulator()
    lan = CsmaLan(sim)
    orch = Orchestrator(sim, lan)
    tserver = orch.run("tserver", Image("ts"))
    dev = orch.run("dev", Image("dev"))
    tserver.exec(DnsServer())
    tserver.exec(NtpServer())
    chatter = dev.exec(
        _RecordingChatter(
            tserver.node.address,
            mean_dns_interval=0.4,
            mean_ntp_interval=1.5,
            seed=seed,
            start_delay=delay,
            tick=tick,
            batch=batch,
        )
    )
    sim.run(until=until)
    return chatter


def _replay_poisson_chain(seed, *, mean_dns=0.4, mean_ntp=1.5, delay=0.25, until=40.0):
    """Re-derive the merged DNS/NTP arrival chain exactly as _tick draws it."""
    import random as _random

    rng = _random.Random(seed)
    t_dns = delay + rng.expovariate(1.0 / mean_dns)
    t_ntp = delay + rng.expovariate(1.0 / mean_ntp)
    out = []
    while min(t_dns, t_ntp) <= until:
        if t_dns <= t_ntp:
            name = f"device-{rng.randrange(64)}.iot.example"
            out.append((t_dns, DNS_PORT, 30 + len(name), ("dns", name)))
            t_dns += rng.expovariate(1.0 / mean_dns)
        else:
            out.append((t_ntp, NTP_PORT, 48, ("ntp", "req")))
            t_ntp += rng.expovariate(1.0 / mean_ntp)
    return out


def test_scalar_emissions_land_at_exact_poisson_instants():
    """Look-ahead booking never quantizes: every scalar datagram leaves at
    the exact arrival instant of the old self-rescheduling chain."""
    chatter = _run_chatter(11, batch=False)
    expected = _replay_poisson_chain(11)
    got = chatter.emitted
    assert got == expected[: len(got)]
    # nothing but (at most) the final look-ahead window may be in flight
    assert len(expected) - len(got) <= 16


def test_scalar_emissions_invariant_to_tick_choice():
    """The tick bounds the look-ahead only — bit-identical scalar output
    (times included) for wildly different tick widths."""
    a = _run_chatter(7, batch=False, tick=0.3)
    b = _run_chatter(7, batch=False, tick=5.0)
    assert a.emitted == b.emitted
    assert a.queries_sent == b.queries_sent
    assert a.rng.getstate() == b.rng.getstate()


def test_batch_emissions_are_bit_exact_twins_of_scalar():
    """Batch trains carry the same datagrams in the same order as the
    scalar twin (timestamps coalesce to the window's last arrival), the
    booking-time counters agree exactly, and both modes leave the RNG in
    the same state."""
    scalar = _run_chatter(23, batch=False, tick=2.0)
    batch = _run_chatter(23, batch=True, tick=2.0)
    strip = lambda rows: [(p, ln, t) for _, p, ln, t in rows]
    s_rows, b_rows = strip(scalar.emitted), strip(batch.emitted)
    # batch may still hold the final window's train when the run cuts off
    assert b_rows == s_rows[: len(b_rows)]
    assert len(s_rows) - len(b_rows) <= 16
    assert batch.queries_sent == scalar.queries_sent
    assert batch.rng.getstate() == scalar.rng.getstate()
    # train emission never reorders inside a window: times are sorted
    times = [t for t, *_ in batch.emitted]
    assert times == sorted(times)


def test_batch_train_fires_at_window_last_arrival():
    scalar = _run_chatter(31, batch=False, tick=2.0)
    batch = _run_chatter(31, batch=True, tick=2.0)
    s_times = {round(t, 12) for t, *_ in scalar.emitted}
    # every batch emission instant is one of the scalar arrival instants
    # (the last of its window) — never an invented timestamp
    for t, *_ in batch.emitted:
        assert round(t, 12) in s_times
