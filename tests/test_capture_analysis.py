"""Tests for capture analytics: flows, talkers, rates, attack intervals."""

import pytest
from hypothesis import given, strategies as st

from repro.capture import (
    aggregate_flows,
    analyze,
    attack_intervals,
    rate_series,
    top_talkers,
)
from repro.sim.packet import PROTO_TCP, TcpFlags
from repro.sim.tracing import PacketRecord


def record(ts=0.0, src=1, dst=2, sport=100, dport=80, size=60, flags=int(TcpFlags.ACK),
           label=0, attack=None):
    return PacketRecord(ts, src, dst, PROTO_TCP, sport, dport, size, flags, 0, label, attack)


class TestAggregateFlows:
    def test_groups_by_five_tuple(self):
        records = [
            record(0.0, src=1, sport=100),
            record(0.5, src=1, sport=100),
            record(1.0, src=1, sport=200),  # different flow
        ]
        flows = aggregate_flows(records)
        assert len(flows) == 2
        key = (1, 100, 2, 80, PROTO_TCP)
        assert flows[key].packets == 2
        assert flows[key].payload_bytes == 120

    def test_flow_duration_and_flags(self):
        records = [
            record(1.0, flags=int(TcpFlags.SYN)),
            record(3.5, flags=int(TcpFlags.FIN | TcpFlags.ACK)),
        ]
        (flow,) = aggregate_flows(records).values()
        assert flow.duration == pytest.approx(2.5)
        assert flow.syn_count == 1
        assert flow.fin_count == 1

    def test_majority_label_verdict(self):
        records = [record(label=1), record(label=1), record(label=0)]
        (flow,) = aggregate_flows(records).values()
        assert flow.is_malicious
        records = [record(label=1), record(label=0)]
        (flow,) = aggregate_flows(records).values()
        assert not flow.is_malicious  # tie is benign

    def test_empty(self):
        assert aggregate_flows([]) == {}

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=60))
    def test_property_packet_conservation(self, sources):
        records = [record(ts=i * 0.01, src=s) for i, s in enumerate(sources)]
        flows = aggregate_flows(records)
        assert sum(f.packets for f in flows.values()) == len(records)


class TestTopTalkers:
    def test_ranked_by_packets(self):
        records = [record(src=9)] * 5 + [record(src=4)] * 2
        assert top_talkers(records, n=2) == [(9, 5), (4, 2)]

    def test_ranked_by_bytes(self):
        records = [record(src=9, size=10)] * 5 + [record(src=4, size=1000)]
        assert top_talkers(records, n=1, by="bytes") == [(4, 1000)]

    def test_invalid_ranking_rejected(self):
        with pytest.raises(ValueError):
            top_talkers([], by="fame")


class TestRateSeries:
    def test_per_interval_class_counts(self):
        records = [
            record(0.2, label=0),
            record(0.8, label=1),
            record(2.5, label=0),
        ]
        series = rate_series(records, 1.0)
        assert series == [(0.0, 1, 1), (2.0, 1, 0)]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            rate_series([], 0.0)


class TestAttackIntervals:
    def test_single_burst(self):
        records = [record(t, label=1, attack="syn_flood") for t in (5.0, 5.5, 6.0)]
        (interval,) = attack_intervals(records)
        assert interval.attack == "syn_flood"
        assert interval.start == 5.0
        assert interval.end == 6.0
        assert interval.packets == 3
        assert interval.duration == pytest.approx(1.0)

    def test_gap_splits_bursts(self):
        times = [1.0, 1.5, 10.0, 10.5]
        records = [record(t, label=1, attack="udp_flood") for t in times]
        intervals = attack_intervals(records, gap=2.0)
        assert len(intervals) == 2
        assert intervals[0].end == 1.5
        assert intervals[1].start == 10.0

    def test_multiple_attacks_sorted_by_start(self):
        records = [record(8.0, label=1, attack="ack_flood"),
                   record(2.0, label=1, attack="syn_flood")]
        intervals = attack_intervals(records)
        assert [i.attack for i in intervals] == ["syn_flood", "ack_flood"]

    def test_benign_ignored(self):
        assert attack_intervals([record(label=0)]) == []


class TestAnalyze:
    def test_report_counts_and_str(self):
        records = [record(t, src=7, label=1, attack="udp_flood") for t in (0.0, 0.5)]
        records += [record(1.0, src=3, sport=999)]
        report = analyze(records)
        assert report.n_flows == 2
        assert report.n_malicious_flows == 1
        assert report.talkers[0] == (7, 2)
        text = str(report)
        assert "udp_flood" in text
        assert "flows: 2 (1 malicious)" in text

    def test_on_real_testbed_capture(self):
        """End-to-end: the forensic report matches a real capture's schedule."""
        from repro.testbed import AttackPhase, Scenario, Testbed

        scenario = Scenario(n_devices=2, seed=61)
        testbed = Testbed(scenario).build()
        testbed.infect_all()
        phases = [AttackPhase(start=2.0, kind="udp", duration=3.0, pps_per_bot=60)]
        capture = testbed.capture(8.0, phases, rebase_timestamps=True)
        report = analyze(capture.records)
        udp_spans = [i for i in report.intervals if i.attack == "udp_flood"]
        assert len(udp_spans) == 1
        assert udp_spans[0].start == pytest.approx(2.0, abs=0.3)
        assert udp_spans[0].duration == pytest.approx(3.0, abs=0.5)
        assert report.n_malicious_flows > 0
